"""Unit tests for query graph assembly and Table 3 statistics."""

import pytest

from repro.core import QueryGraph, build_query_graph
from repro.errors import AnalysisError
from repro.wiki import WikiGraphBuilder


class TestBuildQueryGraph:
    def test_includes_seeds_expansion_and_categories(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["canal"]])
        assert ids["venice"] in qg.graph
        assert ids["canal"] in qg.graph
        assert ids["attractions"] in qg.graph  # category pulled in
        assert ids["sheep"] not in qg.graph  # not part of X(q)

    def test_induced_edges_kept(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["cannaregio"]])
        assert qg.graph.has_edge(ids["venice"], ids["cannaregio"])

    def test_redirect_resolved_to_main(self, venice_world):
        graph, ids = venice_world
        # 'gondole' redirects to cannaregio; using it as an expansion
        # article must pull in the main article.
        qg = build_query_graph(graph, [ids["venice"]], [ids["gondole"]])
        assert ids["cannaregio"] in qg.graph
        assert ids["cannaregio"] in qg.expansion_articles
        # The redirect article itself is retained as a satellite node.
        assert ids["gondole"] in qg.graph

    def test_expansion_never_overlaps_seeds(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["venice"], ids["canal"]])
        assert qg.seed_articles == frozenset({ids["venice"]})
        assert qg.expansion_articles == frozenset({ids["canal"]})

    def test_unknown_article_rejected(self, venice_world):
        graph, ids = venice_world
        with pytest.raises(AnalysisError):
            build_query_graph(graph, [999_999], [])

    def test_best_set(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["canal"]])
        assert qg.best_set == frozenset({ids["venice"], ids["canal"]})

    def test_repr(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [])
        assert "QueryGraph(" in repr(qg)


class TestStats:
    def test_connected_graph_stats(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(
            graph, [ids["venice"]], [ids["cannaregio"], ids["canal"], ids["palazzo"]]
        )
        stats = qg.stats()
        assert stats.relative_size == pytest.approx(
            stats.lcc_size / qg.graph.num_nodes
        )
        assert stats.query_node_ratio == 1.0
        assert stats.article_ratio + stats.category_ratio == pytest.approx(1.0)
        assert stats.expansion_ratio == pytest.approx(4.0)  # 4 articles / 1 seed
        assert 0.0 <= stats.tpr <= 1.0

    def test_disconnected_expansion(self, venice_world):
        graph, ids = venice_world
        # sheep/anthrax connect to venice via links, so build a graph where
        # the second component is genuinely detached: use a fresh world.
        builder = WikiGraphBuilder()
        a = builder.add_article("a")
        b = builder.add_article("b")
        lonely = builder.add_article("island")
        cat = builder.add_category("cat")
        other = builder.add_category("other")
        builder.add_belongs(a, cat)
        builder.add_belongs(b, cat)
        builder.add_belongs(lonely, other)
        full = builder.build()
        qg = build_query_graph(full, [a], [b, lonely])
        stats = qg.stats()
        assert stats.lcc_size == 3  # a, b, cat
        assert stats.relative_size == pytest.approx(3 / 5)
        assert stats.query_node_ratio == 1.0
        # a and b in the LCC -> expansion ratio 2/1.
        assert stats.expansion_ratio == pytest.approx(2.0)

    def test_seed_outside_lcc_gives_zero_expansion_ratio(self):
        builder = WikiGraphBuilder()
        seed = builder.add_article("seed")
        seed_cat = builder.add_category("seed cat")
        builder.add_belongs(seed, seed_cat)
        big = [builder.add_article(f"n{i}") for i in range(4)]
        cat = builder.add_category("big cat")
        for node in big:
            builder.add_belongs(node, cat)
        graph = builder.build()
        qg = build_query_graph(graph, [seed], big)
        stats = qg.stats()
        # LCC is the 5-node expansion cluster; the seed sits outside.
        assert stats.lcc_size == 5
        assert stats.query_node_ratio == 0.0
        assert stats.expansion_ratio == 0.0  # paper's convention

    def test_empty_graph_stats(self):
        builder = WikiGraphBuilder(strict=False)
        graph = builder.build()
        qg = QueryGraph(graph, frozenset(), frozenset())
        stats = qg.stats()
        assert stats.num_nodes == 0
        assert stats.relative_size == 0.0

    def test_missing_article_in_constructor(self, venice_world):
        graph, ids = venice_world
        sub = graph.induced_subgraph([ids["venice"], ids["attractions"]])
        with pytest.raises(AnalysisError):
            QueryGraph(sub, frozenset({ids["venice"]}), frozenset({ids["canal"]}))

    def test_articles_and_categories_accessors(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["canal"]])
        assert ids["venice"] in qg.articles()
        assert ids["attractions"] in qg.categories()
