"""Tests for DOT exports, query-graph description and distance analysis."""

import pytest

from repro.core import (
    Cycle,
    build_query_graph,
    cycle_to_dot,
    describe_query_graph,
    expansion_distance_histogram,
    query_graph_to_dot,
)


@pytest.fixture
def query_graph(venice_world):
    graph, ids = venice_world
    return build_query_graph(
        graph, [ids["venice"]], [ids["cannaregio"], ids["canal"], ids["palazzo"]]
    ), ids


class TestQueryGraphDot:
    def test_valid_dot_structure(self, query_graph):
        qg, ids = query_graph
        dot = query_graph_to_dot(qg)
        assert dot.startswith("graph query_graph {")
        assert dot.rstrip().endswith("}")

    def test_shapes_follow_figure_3(self, query_graph):
        qg, ids = query_graph
        dot = query_graph_to_dot(qg)
        assert f'n{ids["venice"]} [label="venice", shape=triangle];' in dot
        assert f'n{ids["canal"]} [label="grand canal", shape=ellipse];' in dot
        assert "shape=box" in dot  # the category

    def test_undirected_edges_deduplicated(self, query_graph):
        qg, ids = query_graph
        dot = query_graph_to_dot(qg)
        u, v = sorted((ids["venice"], ids["cannaregio"]))
        assert dot.count(f"n{u} -- n{v}") == 1

    def test_redirect_edge_dashed(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [ids["gondole"]])
        dot = query_graph_to_dot(qg)
        assert "style=dashed" in dot

    def test_label_escaping(self, venice_world):
        from repro.wiki import WikiGraphBuilder

        builder = WikiGraphBuilder(strict=False)
        node = builder.add_article('weird "quoted" title')
        qg = build_query_graph(builder.build(), [node], [])
        assert '\\"quoted\\"' in query_graph_to_dot(qg)


class TestCycleDot:
    def test_cycle_with_chords(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["cannaregio"], ids["attractions"]))
        dot = cycle_to_dot(graph, cycle)
        assert dot.count(" -- ") == 3  # the triangle's three undirected pairs
        assert "shape=box" in dot

    def test_only_cycle_nodes_included(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["cannaregio"]))
        dot = cycle_to_dot(graph, cycle)
        assert f"n{ids['canal']}" not in dot


class TestDescribe:
    def test_mentions_seeds_and_expansion(self, query_graph):
        qg, ids = query_graph
        text = describe_query_graph(qg)
        assert "venice" in text
        assert "grand canal" in text
        assert "LCC" in text


class TestExpansionDistances:
    def test_distances_within_query_graph(self, query_graph):
        qg, ids = query_graph
        histogram = expansion_distance_histogram(qg)
        # All three expansion articles reachable within <= 2 hops.
        assert sum(histogram.values()) == 3
        assert all(0 < key <= 3 for key in histogram)

    def test_empty_when_no_expansion(self, venice_world):
        graph, ids = venice_world
        qg = build_query_graph(graph, [ids["venice"]], [])
        assert expansion_distance_histogram(qg) == {}
