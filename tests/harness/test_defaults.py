"""Tests for the cached default benchmark/pipeline and the paper constants."""

from repro.harness import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG7A,
    PAPER_FIG7B,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    default_benchmark,
    default_pipeline_result,
)


class TestDefaults:
    def test_default_benchmark_is_50_topics(self):
        benchmark = default_benchmark()
        assert benchmark.num_topics == 50
        benchmark.validate()

    def test_default_benchmark_deterministic(self):
        first = default_benchmark()
        second = default_benchmark()
        assert first.topics.to_json() == second.topics.to_json()

    def test_pipeline_result_cached(self):
        first = default_pipeline_result(seed=7)
        second = default_pipeline_result(seed=7)
        assert first is second


class TestPaperConstants:
    """The transcribed paper values themselves must be internally sane."""

    def test_table2_quartiles_ordered(self):
        for values in PAPER_TABLE2.values():
            assert list(values) == sorted(values)

    def test_table3_quartiles_ordered(self):
        for values in PAPER_TABLE3.values():
            assert list(values) == sorted(values)

    def test_table4_covers_seven_configurations(self):
        assert len(PAPER_TABLE4) == 7
        assert (2, 3, 4, 5) in PAPER_TABLE4

    def test_fig5_two_cycles_peak(self):
        assert PAPER_FIG5[2] == max(PAPER_FIG5.values())
        assert PAPER_FIG5[3] == min(PAPER_FIG5.values())

    def test_fig6_monotone(self):
        assert PAPER_FIG6[2] < PAPER_FIG6[3] < PAPER_FIG6[4] < PAPER_FIG6[5]

    def test_fig7_bands(self):
        assert all(0.3 < v < 0.45 for v in PAPER_FIG7A.values())
        assert all(0.25 < v < 0.45 for v in PAPER_FIG7B.values())
