"""Tests for the per-table/figure experiment functions and formatting."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.harness import (
    PAPER_FIG5,
    PAPER_TABLE2,
    PAPER_TABLE4,
    PipelineConfig,
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig7a_category_ratio,
    fig7b_density,
    fig9_density_vs_contribution,
    format_five_point_table,
    format_series,
    format_series_comparison,
    format_table4,
    run_pipeline,
    sec3_structural_stats,
    table2_ground_truth_precision,
    table3_largest_cc_stats,
    table4_cycle_expansion_precision,
)
from repro.wiki import SyntheticWikiConfig

WIKI = SyntheticWikiConfig(seed=41, num_domains=10, background_articles=200,
                           background_categories=20)
COLL = SyntheticCollectionConfig(seed=42, background_docs=100)


@pytest.fixture(scope="module")
def result():
    return run_pipeline(Benchmark.synthetic(WIKI, COLL), PipelineConfig(seed=43))


class TestTable2:
    def test_rows_cover_all_ranks(self, result):
        rows = table2_ground_truth_precision(result)
        assert set(rows) == {"top-1", "top-5", "top-10", "top-15"}

    def test_values_are_probabilities(self, result):
        for summary in table2_ground_truth_precision(result).values():
            for value in summary.as_tuple():
                assert 0.0 <= value <= 1.0

    def test_quartiles_ordered(self, result):
        for summary in table2_ground_truth_precision(result).values():
            values = summary.as_tuple()
            assert values == tuple(sorted(values))

    def test_early_precision_high(self, result):
        """The ground truth achieves near-perfect top-1, like the paper."""
        rows = table2_ground_truth_precision(result)
        assert rows["top-1"].median >= 0.9


class TestTable3:
    def test_rows(self, result):
        rows = table3_largest_cc_stats(result)
        assert set(rows) == {
            "%size", "%query nodes", "%articles", "%categories", "expansion ratio",
        }

    def test_categories_dominate(self, result):
        """Paper: the LCC is clearly dominated by categories."""
        rows = table3_largest_cc_stats(result)
        assert rows["%categories"].median > rows["%articles"].median

    def test_query_nodes_in_lcc(self, result):
        rows = table3_largest_cc_stats(result)
        assert rows["%query nodes"].median == 1.0

    def test_expansion_ratio_above_one(self, result):
        rows = table3_largest_cc_stats(result)
        assert rows["expansion ratio"].median > 1.0


class TestTable4:
    def test_seven_configurations(self, result):
        rows = table4_cycle_expansion_precision(result)
        assert [row.lengths for row in rows] == [
            (2,), (3,), (4,), (5,), (2, 3), (2, 3, 4), (2, 3, 4, 5),
        ]

    def test_precisions_are_probabilities(self, result):
        for row in table4_cycle_expansion_precision(result):
            for value in row.precisions.values():
                assert 0.0 <= value <= 1.0

    def test_labels(self, result):
        rows = table4_cycle_expansion_precision(result)
        assert rows[4].label() == "2 & 3"

    def test_combined_config_beats_three_only_at_depth(self, result):
        """Paper shape: the all-lengths configuration is the best (or tied)
        at top-15 among the tested configurations."""
        rows = {row.lengths: row for row in table4_cycle_expansion_precision(result)}
        full = rows[(2, 3, 4, 5)].precisions[15]
        assert full >= rows[(3,)].precisions[15]


class TestFigures:
    def test_fig5_lengths(self, result):
        series = fig5_contribution_by_length(result)
        assert set(series) <= {2, 3, 4, 5}
        assert len(series) >= 3

    def test_fig6_counts_positive(self, result):
        series = fig6_cycle_counts(result)
        assert all(v > 0 for v in series.values())

    def test_fig6_counts_grow_with_length(self, result):
        series = fig6_cycle_counts(result)
        assert series[5] > series[2]

    def test_fig7a_band(self, result):
        """Category ratio stays in the paper's 0.3-0.5 band, flat-ish."""
        series = fig7a_category_ratio(result)
        for value in series.values():
            assert 0.25 <= value <= 0.55

    def test_fig7b_defined_densities(self, result):
        series = fig7b_density(result)
        for value in series.values():
            assert 0.0 <= value <= 1.0

    def test_fig9_positive_slope(self, result):
        """Paper: the denser the cycle, the better its contribution."""
        data = fig9_density_vs_contribution(result)
        assert data.slope > 0
        assert data.points
        assert data.trend

    def test_sec3_stats(self, result):
        stats = sec3_structural_stats(result)
        assert 0.0 <= stats.average_tpr <= 1.0
        assert 0.05 <= stats.reciprocal_pair_ratio <= 0.2
        assert stats.average_query_graph_nodes > 0
        assert stats.average_improvement_percent > 0


class TestFormatting:
    def test_five_point_table(self, result):
        text = format_five_point_table(
            table2_ground_truth_precision(result), "Table 2", paper=PAPER_TABLE2
        )
        assert "Table 2" in text
        assert "(paper)" in text
        assert "top-15" in text

    def test_series_format(self, result):
        text = format_series(fig6_cycle_counts(result), "Figure 6")
        assert "Figure 6" in text

    def test_series_comparison(self, result):
        text = format_series_comparison(
            fig5_contribution_by_length(result), PAPER_FIG5, "Figure 5"
        )
        assert "measured" in text
        assert "paper" in text

    def test_table4_format(self, result):
        text = format_table4(
            table4_cycle_expansion_precision(result), (1, 5, 10, 15), PAPER_TABLE4
        )
        assert "2 & 3 & 4 & 5" in text
        assert "(paper)" in text
