"""Integration tests: the full pipeline over a small synthetic benchmark."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.harness import PipelineConfig, run_pipeline
from repro.wiki import SyntheticWikiConfig

WIKI = SyntheticWikiConfig(seed=31, num_domains=8, background_articles=150,
                           background_categories=15)
COLL = SyntheticCollectionConfig(seed=32, background_docs=80)


@pytest.fixture(scope="module")
def result():
    benchmark = Benchmark.synthetic(WIKI, COLL)
    return run_pipeline(benchmark, PipelineConfig(seed=33))


class TestPipelineShape:
    def test_one_outcome_per_topic(self, result):
        assert result.num_queries == 8

    def test_seeds_linked(self, result):
        for outcome in result.outcomes:
            assert outcome.seed_articles, outcome.topic

    def test_candidates_found(self, result):
        for outcome in result.outcomes:
            assert outcome.candidate_articles

    def test_ground_truth_at_least_as_good_as_base(self, result):
        for outcome in result.outcomes:
            assert outcome.best_score.mean >= outcome.base_score.mean

    def test_expansion_improves_on_average(self, result):
        gains = [
            o.best_score.mean - o.base_score.mean for o in result.outcomes
        ]
        assert sum(gains) / len(gains) > 0.05

    def test_query_graph_contains_best_set(self, result):
        for outcome in result.outcomes:
            for article in outcome.ground_truth.best_set:
                main = result.benchmark.graph.resolve(article)
                assert main in outcome.query_graph.graph

    def test_records_have_valid_lengths(self, result):
        for outcome in result.outcomes:
            for record in outcome.records:
                assert 2 <= record.length <= 5
                assert record.query_id == outcome.topic.topic_id

    def test_cycles_anchored_at_seeds(self, result):
        for outcome in result.outcomes:
            for record in outcome.records:
                assert set(record.features.cycle.nodes) & set(
                    outcome.query_graph.seed_articles
                )

    def test_wall_clock_recorded(self, result):
        assert all(o.cycle_wall_seconds >= 0.0 for o in result.outcomes)

    def test_all_records_concatenates(self, result):
        assert len(result.all_records()) == sum(o.num_cycles for o in result.outcomes)

    def test_determinism(self):
        first = run_pipeline(Benchmark.synthetic(WIKI, COLL), PipelineConfig(seed=33))
        second = run_pipeline(Benchmark.synthetic(WIKI, COLL), PipelineConfig(seed=33))
        for left, right in zip(first.outcomes, second.outcomes):
            assert left.ground_truth.expansion_set == right.ground_truth.expansion_set
            assert left.base_score == right.base_score
            assert [r.features.cycle for r in left.records] == [
                r.features.cycle for r in right.records
            ]

    def test_candidate_cap_respected(self):
        config = PipelineConfig(seed=33, max_candidates=3)
        result = run_pipeline(Benchmark.synthetic(WIKI, COLL), config)
        for outcome in result.outcomes:
            assert len(outcome.ground_truth.expansion_set) <= 3

    def test_synonymless_config_runs(self):
        config = PipelineConfig(seed=33, use_synonyms=False)
        result = run_pipeline(Benchmark.synthetic(WIKI, COLL), config)
        assert result.num_queries == 8
