"""Tests for the markdown report generator."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.harness import PipelineConfig, render_report, run_pipeline, save_report
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def result():
    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=61, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=62, background_docs=40),
    )
    return run_pipeline(benchmark, PipelineConfig(seed=63))


class TestRenderReport:
    def test_contains_every_section(self, result):
        report = render_report(result)
        for heading in (
            "# Reproduction report",
            "## Ground truth per query",
            "## Table 2",
            "## Table 3",
            "## Table 4",
            "## Figure 5",
            "## Figure 6",
            "## Figure 7a",
            "## Figure 7b",
            "## Figure 9",
            "## Section 3 structural statistics",
        ):
            assert heading in report, heading

    def test_one_row_per_topic(self, result):
        report = render_report(result)
        section = report.split("## Table 2")[0]
        data_rows = [
            line for line in section.splitlines()
            if line.startswith("| ") and "topic" not in line and "---" not in line
        ]
        assert len(data_rows) == result.num_queries

    def test_paper_values_included(self, result):
        report = render_report(result)
        assert "(paper)" in report
        assert "0.1147" in report  # the 2-cycle ratio constant

    def test_custom_title(self, result):
        assert render_report(result, title="My Run").startswith("# My Run")

    def test_save_report(self, result, tmp_path):
        path = save_report(result, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("# Reproduction report")

    def test_long_keywords_truncated(self, result):
        report = render_report(result)
        for line in report.splitlines():
            if line.startswith("| ") and "..." in line:
                break  # truncation exercised on at least one row, or none needed
        assert True
