"""Tests for the robustness sweep machinery."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.harness import PipelineConfig, run_pipeline
from repro.harness.sweep import ShapeChecks, SweepOutcome, check_shapes, run_seed_sweep
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def small_result():
    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=81, num_domains=8, background_articles=150,
                            background_categories=15),
        SyntheticCollectionConfig(seed=82, background_docs=80),
    )
    return run_pipeline(benchmark, PipelineConfig(seed=83))


class TestCheckShapes:
    def test_returns_all_fields(self, small_result):
        checks = check_shapes(small_result)
        assert set(checks.as_dict()) == {
            "fig5_two_peak", "fig5_two_best_per_article", "fig5_three_min",
            "fig6_monotone", "fig9_positive_slope",
            "table4_full_best_at_depth", "expansion_helps",
        }

    def test_expansion_helps_on_synthetic(self, small_result):
        assert check_shapes(small_result).expansion_helps

    def test_all_hold_consistency(self, small_result):
        checks = check_shapes(small_result)
        assert checks.all_hold == all(checks.as_dict().values())


class TestSweepOutcome:
    def _outcome(self, flags):
        checks = [
            ShapeChecks(
                fig5_two_peak=f, fig5_two_best_per_article=f,
                fig5_three_min=f, fig6_monotone=f,
                fig9_positive_slope=f, table4_full_best_at_depth=f,
                expansion_helps=f,
            )
            for f in flags
        ]
        return SweepOutcome(seeds=list(range(len(flags))), checks=checks)

    def test_pass_rate(self):
        outcome = self._outcome([True, True, False, True])
        assert outcome.pass_rate("fig6_monotone") == pytest.approx(0.75)

    def test_holds_majority(self):
        assert self._outcome([True, True, False]).holds_majority("expansion_helps")
        assert not self._outcome([True, False, False]).holds_majority("expansion_helps")

    def test_empty_sweep(self):
        outcome = SweepOutcome(seeds=[], checks=[])
        assert outcome.pass_rate("fig6_monotone") == 0.0

    def test_summary_lists_rates(self):
        summary = self._outcome([True, False]).summary()
        assert "fig5_two_peak" in summary
        assert "50%" in summary


class TestRunSeedSweep:
    def test_two_seed_sweep(self):
        outcome = run_seed_sweep((5, 9), num_domains=5)
        assert outcome.seeds == [5, 9]
        assert len(outcome.checks) == 2
        # Expansion helping is the most fundamental invariant.
        assert outcome.pass_rate("expansion_helps") == 1.0
