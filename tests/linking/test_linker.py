"""Unit tests for entity linking."""

import pytest

from repro.errors import LinkingError
from repro.linking import EntityLinker, SynonymProvider
from repro.retrieval import Tokenizer
from repro.wiki import WikiGraphBuilder


@pytest.fixture
def graph():
    builder = WikiGraphBuilder(strict=False)
    builder.add_article("Venice")
    builder.add_article("Grand Canal")
    builder.add_article("Grand Canal (Venice)")
    builder.add_article("Gondola")
    builder.add_article("Street Art")
    builder.add_article("Graffiti")
    main = builder.add_article("Mekhitarist Order")
    alias = builder.add_article("Mechitarists", is_redirect=True)
    builder.add_redirect(alias, main)
    art = builder.article_id("Street Art")
    wall = builder.add_article("wall painting", is_redirect=True)
    builder.add_redirect(wall, art)
    return builder.build()


@pytest.fixture
def linker(graph):
    return EntityLinker(graph)


def titles(graph, result):
    return {graph.title(a) for a in result.article_ids}


class TestBasicLinking:
    def test_single_entity(self, graph, linker):
        assert titles(graph, linker.link("gondola")) == {"Gondola"}

    def test_multi_word_entity(self, graph, linker):
        assert titles(graph, linker.link("the grand canal at dawn")) == {"Grand Canal"}

    def test_largest_substring_wins(self, graph, linker):
        # "grand canal venice"? Not a title. "grand canal (venice)" tokenises
        # to (grand, canal, venice), so the 3-gram must beat "Grand Canal".
        result = linker.link("grand canal venice")
        assert titles(graph, result) == {"Grand Canal (Venice)"}

    def test_multiple_entities(self, graph, linker):
        result = linker.link("graffiti street art")
        assert titles(graph, result) == {"Graffiti", "Street Art"}

    def test_no_entities(self, graph, linker):
        result = linker.link("completely unrelated words here")
        assert result.article_ids == frozenset()
        assert len(result) == 0

    def test_case_and_punctuation_insensitive(self, graph, linker):
        assert titles(graph, linker.link("GONDOLA!!!")) == {"Gondola"}

    def test_empty_text(self, graph, linker):
        assert linker.link("").article_ids == frozenset()

    def test_non_overlapping_consumption(self, graph, linker):
        # After consuming "grand canal", the scan resumes *after* it, so
        # "canal" alone cannot rematch.
        result = linker.link("grand canal gondola")
        assert titles(graph, result) == {"Grand Canal", "Gondola"}

    def test_match_spans(self, linker):
        result = linker.link("see the grand canal")
        match = result.matches[0]
        assert match.title_tokens == ("grand", "canal")
        assert (match.start, match.end) == (2, 4)
        assert match.length == 2

    def test_link_keywords_returns_ids(self, graph, linker):
        ids = linker.link_keywords("gondola venice")
        assert {graph.title(i) for i in ids} == {"Gondola", "Venice"}

    def test_contains_protocol(self, graph, linker):
        result = linker.link("gondola")
        gondola = graph.article_by_title("gondola").node_id
        assert gondola in result

    def test_repr(self, linker):
        assert "EntityLinker(" in repr(linker)


class TestRedirectHandling:
    def test_redirect_title_resolves_to_main(self, graph, linker):
        result = linker.link("the mechitarists of venice")
        assert "Mekhitarist Order" in titles(graph, result)

    def test_resolution_can_be_disabled(self, graph):
        linker = EntityLinker(graph, resolve_redirects=False)
        result = linker.link("mechitarists")
        assert titles(graph, result) == {"Mechitarists"}


class TestSynonymPhrases:
    def test_synonym_provider_lists_redirect_titles(self, graph):
        provider = SynonymProvider(graph)
        assert provider.synonyms("mekhitarist order") == [("mechitarists",)]

    def test_synonyms_of_redirect_term_resolve_first(self, graph):
        provider = SynonymProvider(graph)
        # Asking for synonyms of the redirect itself resolves to the main
        # article, whose redirect set is returned.
        assert provider.synonyms("mechitarists") == [("mechitarists",)]

    def test_unknown_term_has_no_synonyms(self, graph):
        assert SynonymProvider(graph).synonyms("zebra") == []

    def test_synonym_phrases_per_token_lookup_only(self, graph):
        provider = SynonymProvider(graph)
        # Replacement candidates come from *single tokens*: neither
        # "mekhitarist" nor "order" is an article title, and "gondola" has
        # no redirects, so no variant phrase is produced.
        variants = provider.synonym_phrases(("gondola", "mekhitarist", "order"))
        assert variants == []

    def test_synonym_phrases_replace_single_token(self, graph):
        provider = SynonymProvider(graph)
        variants = provider.synonym_phrases(("venice", "mekhitarist order"))
        # The pseudo-token "mekhitarist order" matches the article title
        # exactly, so its redirect title is substituted in place.
        assert variants == [("venice", "mechitarists")]

    def test_synonym_phrases_cap(self, graph):
        provider = SynonymProvider(graph)
        variants = provider.synonym_phrases(("graffiti",), max_phrases=0)
        assert variants == []

    def test_multiword_synonym_expansion(self, graph):
        # "wall painting" redirects to "Street Art": a text containing the
        # words "street art" is found directly, but a text containing only
        # "wall painting" should still reach Street Art... via direct title
        # match on the redirect article, resolved to the main article.
        linker = EntityLinker(graph)
        result = linker.link("wall painting in the city")
        assert "Street Art" in titles(graph, result)

    def test_synonym_matching_enables_extra_entities(self):
        """A synonym phrase can complete a longer title.

        KB: article "red canal"; article "crimson" with redirect "red".
        Text "crimson canal" matches nothing directly (no such title), but
        replacing "crimson" by its redirect title "red" yields "red canal",
        which links.
        """
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("red canal")
        crimson = builder.add_article("crimson")
        red = builder.add_article("red", is_redirect=True)
        builder.add_redirect(red, crimson)
        graph = builder.build()
        with_syn = EntityLinker(graph, use_synonyms=True)
        without = EntityLinker(graph, use_synonyms=False)
        target = graph.article_by_title("red canal").node_id
        assert target in with_syn.link("crimson canal")
        assert target not in without.link("crimson canal")

    def test_synonym_matches_flagged(self):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("red canal")
        crimson = builder.add_article("crimson")
        red = builder.add_article("red", is_redirect=True)
        builder.add_redirect(red, crimson)
        linker = EntityLinker(builder.build())
        result = linker.link("crimson canal")
        flags = {m.title_tokens: m.via_synonym for m in result.matches}
        assert flags[("red", "canal")] is True
        assert flags[("crimson",)] is False


class TestValidation:
    def test_empty_graph_rejected(self):
        graph = WikiGraphBuilder(strict=False).build()
        with pytest.raises(LinkingError):
            EntityLinker(graph)

    def test_bad_max_title_tokens(self, graph):
        with pytest.raises(LinkingError):
            EntityLinker(graph, max_title_tokens=0)

    def test_long_titles_skipped(self, graph):
        linker = EntityLinker(graph, max_title_tokens=1)
        result = linker.link("grand canal")
        assert result.article_ids == frozenset()

    def test_custom_tokenizer_respected(self, graph):
        tok = Tokenizer(min_length=2)
        linker = EntityLinker(graph, tokenizer=tok, use_synonyms=False)
        assert linker.link("gondola").article_ids
