"""Shared fixtures for loadgen tests: one small snapshot + its pool."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.loadgen import topic_pool
from repro.service import ShardedSnapshot
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def small_benchmark() -> Benchmark:
    return Benchmark.synthetic(
        SyntheticWikiConfig(seed=61, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=62, background_docs=40),
    )


@pytest.fixture(scope="module")
def snapshot(small_benchmark) -> ShardedSnapshot:
    return ShardedSnapshot.build(small_benchmark, num_shards=1)


@pytest.fixture(scope="module")
def pool(snapshot) -> list[str]:
    return topic_pool(snapshot)
