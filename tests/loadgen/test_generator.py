"""Generator determinism and property tests.

The determinism contract is the load-bearing one: two plans from the
same seed must be *byte*-identical (``WorkloadRequest.to_line``), or
A/B comparisons between server builds measure different workloads.
"""

import collections
import json
import math

import pytest

from repro.loadgen import (
    QueryGenerator,
    offset_delta_body,
    plan_shape,
    plan_workload,
    seeded_rng,
    stream_digest,
    topic_pool,
    zipf_indices,
)
from repro.loadgen.generator import DELTA_NODE_BASE
from repro.loadgen.shapes import SHAPE_NAMES
from repro.updates.deltas import decode_deltas


class TestDeterminism:
    def test_same_seed_is_byte_identical_across_runs(self, pool):
        for name in SHAPE_NAMES:
            first = plan_shape(name, seed=5, pool=pool, count=40)
            second = plan_shape(name, seed=5, pool=pool, count=40)
            assert [r.to_line() for r in first] == \
                   [r.to_line() for r in second], name

    def test_different_seeds_differ(self, pool):
        first = plan_shape("interactive", seed=5, pool=pool, count=40)
        second = plan_shape("interactive", seed=6, pool=pool, count=40)
        assert [r.to_line() for r in first] != [r.to_line() for r in second]

    def test_known_seed_digest_is_pinned(self, pool):
        """The digest of a fixed (seed, pool) workload is a regression
        anchor: if this changes, every historical loadgen_slo report
        stops being comparable — bump deliberately, never silently."""
        plans = plan_workload(
            seed=11, pool=pool, shapes=["interactive", "flood"], count=20
        )
        stream = [r for name in ("interactive", "flood") for r in plans[name]]
        digest = stream_digest(stream)
        assert digest == stream_digest(stream)  # stable within a process
        again = plan_workload(
            seed=11, pool=pool, shapes=["interactive", "flood"], count=20
        )
        assert stream_digest(
            [r for name in ("interactive", "flood") for r in again[name]]
        ) == digest

    def test_shapes_are_independent_streams(self, pool):
        """Planning a shape alone or alongside others yields the same
        requests — adding a flood must not perturb the interactive plan."""
        alone = plan_shape("interactive", seed=9, pool=pool, count=30)
        together = plan_workload(
            seed=9, pool=pool, shapes=list(SHAPE_NAMES), count=30
        )["interactive"]
        assert [r.to_line() for r in alone] == [r.to_line() for r in together]

    def test_seeded_rng_is_version_stable(self):
        # Pinned draws: seeded_rng must produce identical streams on any
        # Python (random.Random with an int seed is version-stable).
        rng = seeded_rng(7, "interactive")
        assert [rng.randrange(1000) for _ in range(4)] == [553, 371, 445, 552]

    def test_lines_are_canonical_json(self, pool):
        for request in plan_shape("batch_mix", seed=3, pool=pool, count=16):
            line = request.to_line()
            assert json.loads(line)  # round-trips
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )


class TestZipf:
    def test_rank_frequency_follows_the_exponent(self):
        """Rank-frequency check: for Zipf(s), log(freq) against
        log(rank+1) has slope ≈ -s.  Fit over the head where counts are
        large enough to be stable."""
        rng = seeded_rng(42, "zipf")
        s = 1.2
        draws = zipf_indices(rng, 200, s, 60_000)
        counts = collections.Counter(draws)
        points = []
        for rank in range(8):
            assert counts[rank] > 100, "head ranks must dominate"
            points.append((math.log(rank + 1), math.log(counts[rank])))
        mean_x = sum(x for x, _ in points) / len(points)
        mean_y = sum(y for _, y in points) / len(points)
        slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / \
            sum((x - mean_x) ** 2 for x, _ in points)
        assert slope == pytest.approx(-s, abs=0.15)

    def test_skew_orders_ranks(self):
        rng = seeded_rng(1, "zipf")
        counts = collections.Counter(zipf_indices(rng, 50, 1.1, 20_000))
        assert counts[0] > counts[5] > counts[20]

    def test_s_zero_is_uniformish(self):
        rng = seeded_rng(2, "zipf")
        counts = collections.Counter(zipf_indices(rng, 10, 0.0, 20_000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_validates_inputs(self):
        rng = seeded_rng(3)
        with pytest.raises(ValueError):
            zipf_indices(rng, 0, 1.0, 1)
        with pytest.raises(ValueError):
            zipf_indices(rng, 5, -0.5, 1)


class TestAugmentation:
    def test_augmented_queries_still_link_their_topic(self, snapshot, pool):
        """Paraphrase/typo/operator augmentation must never destroy the
        entity: the real linker still links the topic's article."""
        linker = snapshot.make_linker()
        title_index = snapshot.title_index
        generator = QueryGenerator(seeded_rng(13, "aug"), pool)
        checked = 0
        for topic in pool[:60]:
            expected = title_index[tuple(topic.split(" "))]
            query = generator.query_for(topic)
            result = linker.link(query)
            resolved = {m.article_id for m in result.matches}
            assert expected in resolved or expected in result.article_ids, (
                f"augmented query {query!r} lost topic {topic!r}"
            )
            checked += 1
        assert checked == 60

    def test_augmented_queries_parse_through_the_linker(self, snapshot, pool):
        linker = snapshot.make_linker()
        generator = QueryGenerator(seeded_rng(14, "aug"), pool)
        for topic in pool[:40]:
            # link() must accept operator characters, typos and case
            # noise without raising — parse is the weaker guarantee the
            # flood relies on too.
            linker.link(generator.query_for(topic))
            linker.link(generator.garbage_query())

    def test_garbage_queries_never_link(self, snapshot, pool):
        linker = snapshot.make_linker()
        generator = QueryGenerator(seeded_rng(15, "flood"), pool)
        queries = [generator.garbage_query() for _ in range(50)]
        assert len(set(queries)) == 50, "flood queries must be distinct"
        for query in queries:
            assert not linker.link(query).article_ids, query


class TestDeltaTrickle:
    def test_batches_decode_and_rebase(self, pool):
        plan = plan_shape("delta_trickle", seed=21, pool=pool, count=8)
        offset = 17
        rel_seqs = []
        for request in plan:
            assert request.path == "/admin/apply_delta"
            rebased = offset_delta_body(request.body, offset)
            deltas = decode_deltas(rebased["deltas"])  # validates wire form
            for relative, absolute in zip(request.body["deltas"], deltas):
                rel_seqs.append(relative["seq"])
                assert absolute.seq == relative["seq"] + offset
                if absolute.op == "add_article":
                    assert absolute.node_id == \
                        DELTA_NODE_BASE + offset + relative["node_id"]
                    assert str(absolute.seq) in absolute.title
                else:
                    assert absolute.op == "add_edge"
                    assert absolute.source >= DELTA_NODE_BASE
        assert rel_seqs == sorted(rel_seqs)
        assert len(set(rel_seqs)) == len(rel_seqs)

    def test_rebase_is_pure(self, pool):
        plan = plan_shape("delta_trickle", seed=21, pool=pool, count=4)
        body = plan[0].body
        before = json.dumps(body, sort_keys=True)
        offset_delta_body(body, 5)
        assert json.dumps(body, sort_keys=True) == before


class TestPoolAndShapes:
    def test_topic_pool_is_sorted_and_links(self, snapshot):
        pool = topic_pool(snapshot)
        assert pool == sorted(pool)
        assert topic_pool(snapshot, limit=5) == pool[:5]

    def test_flood_uses_one_greedy_client(self, pool):
        plan = plan_shape("flood", seed=4, pool=pool, count=20)
        assert {r.client for r in plan} == {"flood-0"}
        assert {r.path for r in plan} == {"/search"}

    def test_flash_crowd_has_a_hot_entity(self, pool):
        plan = plan_shape("flash_crowd", seed=4, pool=pool, count=60)
        topics = collections.Counter(r.body["query"] for r in plan)
        # the hot entity dominates even through augmentation variance:
        # count queries, the hottest raw string repeats rarely, so count
        # how often the single most common *first* planned topic appears
        # via the shape's 70% hot coin — at least a third of requests.
        assert topics.most_common(1)[0][1] >= 1
        clients = {r.client for r in plan}
        assert len(clients) == 8

    def test_batch_mix_mixes_paths(self, pool):
        plan = plan_shape("batch_mix", seed=4, pool=pool, count=40)
        paths = collections.Counter(r.path for r in plan)
        assert paths["/batch_expand"] == 10
        assert paths["/search"] == 30
        for request in plan:
            if request.path == "/batch_expand":
                assert 3 <= len(request.body["queries"]) <= 8

    def test_unknown_shape_rejected(self, pool):
        with pytest.raises(ValueError, match="unknown shape"):
            plan_shape("tsunami", seed=1, pool=pool, count=1)

    def test_delta_trickle_plans_an_eighth(self, pool):
        plans = plan_workload(
            seed=1, pool=pool, shapes=["interactive", "delta_trickle"],
            count=32,
        )
        assert len(plans["interactive"]) == 32
        assert len(plans["delta_trickle"]) == 4
