"""Closed-loop runner + SLO report: replay, cross-check, bench merge."""

import asyncio
import json
import math
import threading

import pytest

from repro.loadgen import (
    build_report,
    merge_into_bench,
    percentile,
    plan_workload,
    run_plans,
    stream_digest,
)
from repro.loadgen.report import server_quantiles
from repro.loadgen.runner import fetch_healthz, fetch_metrics
from repro.obs import RequestLog
from repro.service import (
    AdmissionPolicy,
    AsyncShardRouter,
    HttpFrontEnd,
    ShardRouter,
)
from repro.updates import UpdateCoordinator


@pytest.fixture(scope="module")
def server(snapshot):
    """A front end with admission control on a private loop thread."""
    router = ShardRouter(snapshot.frozen())
    request_log = RequestLog(slow_ms=float("inf"))
    front = HttpFrontEnd(
        AsyncShardRouter(router),
        coordinator=UpdateCoordinator(router, request_log=request_log),
        request_log=request_log,
        admission=AdmissionPolicy(queue_limit=64),
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    bound = asyncio.run_coroutine_threadsafe(
        front.start("127.0.0.1", 0), loop
    ).result(timeout=30)
    port = bound.sockets[0].getsockname()[1]
    yield port
    asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=30)
    front.service.close()


class TestLiveReplay:
    @pytest.fixture(scope="class")
    def replay(self, server, pool):
        plans = plan_workload(
            seed=31, pool=pool,
            shapes=["interactive", "flood", "delta_trickle"], count=16,
        )
        result = run_plans(
            "127.0.0.1", server, plans, rate=200.0, concurrency=2,
        )
        stream = [
            r for name in plans for r in plans[name]
        ]
        report = build_report(
            result, seed=31, rate=200.0,
            stream_sha256=stream_digest(stream), zipf_s=1.1,
        )
        return result, report

    def test_every_planned_request_has_an_outcome(self, replay):
        result, _ = replay
        assert len(result.outcomes["interactive"]) == 16
        assert len(result.outcomes["flood"]) == 16
        assert len(result.outcomes["delta_trickle"]) == 2
        for outcomes in result.outcomes.values():
            assert [o.index for o in outcomes] == list(range(len(outcomes)))

    def test_reads_and_writes_succeed(self, replay):
        result, _ = replay
        for name in ("interactive", "flood", "delta_trickle"):
            for outcome in result.outcomes[name]:
                assert outcome.ok, (name, outcome)
                assert outcome.latency_ms > 0

    def test_delta_trickle_advanced_the_server_seq(self, server, replay):
        assert fetch_healthz("127.0.0.1", server)["delta_seq"] > 0

    def test_report_carries_quantiles_per_shape(self, replay):
        _, report = replay
        for name in ("interactive", "flood", "delta_trickle"):
            shape = report["shapes"][name]
            assert shape["p50_ms"] <= shape["p99_ms"] <= shape["p999_ms"]
            assert shape["error_rate"] == 0.0
        assert report["achieved_rate_total"] > 0

    def test_server_quantiles_cross_check_client_timings(self, replay):
        """The server's histogram view of the run must land in the same
        regime as the client stopwatch: the server p50 may not exceed
        the client's p999 (the server excludes wire+connect overhead)."""
        _, report = replay
        client_p999 = max(
            shape["p999_ms"] for name, shape in report["shapes"].items()
            if name != "delta_trickle"
        )
        assert 0 < report["server"]["p50_ms"] <= client_p999

    def test_second_identical_plan_is_byte_identical(self, pool):
        plans = plan_workload(
            seed=31, pool=pool,
            shapes=["interactive", "flood", "delta_trickle"], count=16,
        )
        again = plan_workload(
            seed=31, pool=pool,
            shapes=["interactive", "flood", "delta_trickle"], count=16,
        )
        flat = lambda p: [r.to_line() for name in p for r in p[name]]  # noqa: E731
        assert flat(plans) == flat(again)


class TestRunnerValidation:
    def test_rejects_bad_rate_and_concurrency(self, pool):
        plans = plan_workload(
            seed=1, pool=pool, shapes=["interactive"], count=2
        )
        with pytest.raises(ValueError):
            run_plans("127.0.0.1", 1, plans, rate=0.0)
        with pytest.raises(ValueError):
            run_plans("127.0.0.1", 1, plans, rate=1.0, concurrency=0)

    def test_metrics_endpoint_round_trips(self, server):
        text = fetch_metrics("127.0.0.1", server)
        assert "repro_request_seconds_bucket" in text
        assert "repro_shed_total" in text


class TestPercentile:
    def test_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.5) == 25.0
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 1.0) == 40.0

    def test_empty_and_singleton(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([7.5], 0.99) == 7.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServerQuantiles:
    def _render(self, buckets, extra=""):
        lines = ["# TYPE repro_request_seconds histogram"]
        for le, count in buckets:
            bound = "+Inf" if le == math.inf else str(le)
            lines.append(
                f'repro_request_seconds_bucket{{path="expand",le="{bound}"}} '
                f"{count}"
            )
        if extra:
            lines.append(extra)
        return "\n".join(lines) + "\n"

    def test_bucket_deltas_are_not_double_cumulated(self):
        """Exposed buckets are cumulative; the delta math must subtract,
        not re-accumulate (regression: p99 pinned at the top bound)."""
        before = self._render([(0.01, 0), (0.1, 0), (math.inf, 0)])
        after = self._render([(0.01, 90), (0.1, 100), (math.inf, 100)])
        out = server_quantiles(before, after)
        assert out["p50_ms"] < 10.0
        assert out["p99_ms"] <= 100.0

    def test_shed_counts_are_deltas(self):
        base = self._render([(0.01, 0), (math.inf, 0)])
        shed = '\nrepro_shed_total{reason="over_capacity"} 7'
        before = base + 'repro_shed_total{reason="over_capacity"} 2\n'
        after = base + shed.strip() + "\n"
        out = server_quantiles(before, after)
        assert out["shed_by_reason"] == {"over_capacity": 5}
        assert out["shed_total"] == 5


class TestBenchMerge:
    def test_merge_preserves_other_sections(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps(
            {"cycle_kernel_speedup": {"x": 1}, "service_latency_ms": {}}
        ))
        merged = merge_into_bench(path, {"seed": 3})
        assert merged["cycle_kernel_speedup"] == {"x": 1}
        assert merged["service_latency_ms"] == {}
        on_disk = json.loads(path.read_text())
        assert on_disk["loadgen_slo"] == {"seed": 3}
        assert on_disk["cycle_kernel_speedup"] == {"x": 1}

    def test_merge_creates_the_file(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        merge_into_bench(path, {"seed": 4})
        assert json.loads(path.read_text())["loadgen_slo"]["seed"] == 4
