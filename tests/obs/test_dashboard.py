"""The `repro top` frame renderer as a pure function of canned payloads."""

import io

from repro.obs.dashboard import render_dashboard, run_top
from repro.obs.metrics import MetricsRegistry


def canned_stats() -> dict:
    return {
        "shards": 2,
        "uptime_s": 42.0,
        "requests_total": 120,
        "queries": 118,
        "batches": 3,
        "errors": 2,
        "link_cache": {"hits": 90, "misses": 30, "hit_rate": 0.75,
                       "size": 30, "max_size": 512},
        "expansion_cache": {"hits": 80, "misses": 40, "hit_rate": 2 / 3,
                            "size": 40, "max_size": 256},
        "per_shard": [
            {"queries": 70, "inflight_waits": 4},
            {"queries": 48, "inflight_waits": 1},
        ],
        "per_shard_hit_rates": [0.8, 0.5],
        "per_shard_inflight": [1, 0],
        "http": {
            "requests_total": 130,
            "errors": 5,
            "errors_by_status": {"404": 3, "500": 2},
            "coalesced_requests": 7,
            "slow_queries": {
                "threshold_ms": 100.0,
                "requests": 120,
                "slow": 2,
                "reservoir_capacity": 32,
                "entries": [
                    {"seq": 9, "endpoint": "/expand", "latency_ms": 250.5,
                     "query": "graph mining"},
                    {"seq": 4, "endpoint": "/expand", "latency_ms": 140.0,
                     "query": "query expansion"},
                ],
            },
        },
    }


def canned_metrics_text() -> str:
    registry = MetricsRegistry()
    stages = registry.histogram(
        "repro_stage_seconds", "busy", ("stage",), buckets=(0.001, 0.01, 0.1)
    )
    for stage, value in (("link", 0.0005), ("expand", 0.002),
                         ("rank", 0.005), ("rank", 0.02), ("merge", 0.0004)):
        stages.observe(value, stage=stage)
    return registry.render()


class TestRenderDashboard:
    def test_frame_carries_every_section(self):
        frame = render_dashboard(canned_stats(), canned_metrics_text())
        assert "repro top — shards=2  uptime=42s" in frame
        assert "router  requests=120  queries=118  batches=3  errors=2" in frame
        assert "http    requests=130  errors=5 (404:3 500:2)  coalesced=7" \
            in frame
        assert "link_cache" in frame and "75.0% hit" in frame
        assert "shard  queries  inflight  waits  hit_rate" in frame
        assert "stage        count   p50_ms   p95_ms   p99_ms" in frame
        assert "slow queries (>= 100 ms): 2/120 sampled" in frame
        assert "'graph mining'" in frame

    def test_stage_rows_follow_pipeline_order(self):
        frame = render_dashboard(canned_stats(), canned_metrics_text())
        positions = [frame.index(stage) for stage in
                     ("link", "expand", "rank", "merge")
                     if stage in frame]
        stage_section = frame[frame.index("stage        count"):]
        order = [stage for stage in ("link", "expand", "rank", "merge")]
        indices = [stage_section.index(f"\n{stage}") for stage in order]
        assert indices == sorted(indices)
        assert positions  # the stages all rendered somewhere

    def test_qps_needs_a_previous_frame(self):
        stats = canned_stats()
        assert "qps=-" in render_dashboard(stats)
        previous = dict(stats, requests_total=100)
        frame = render_dashboard(stats, previous=previous, interval_s=2.0)
        assert "qps=10.0" in frame

    def test_minimal_stats_render_without_optional_sections(self):
        frame = render_dashboard({"shards": 1})
        assert "repro top — shards=1" in frame
        assert "slow queries" not in frame
        assert "stage " not in frame

    def test_cycle_mine_engine_line_renders_from_the_counter(self):
        registry = MetricsRegistry()
        runs = registry.counter(
            "repro_cycle_mine_total", "runs by engine", ("engine",)
        )
        runs.inc(engine="kernels")
        runs.inc(engine="kernels")
        runs.inc(engine="dfs")
        frame = render_dashboard(canned_stats(), registry.render())
        assert "cycle_mine engines: dfs=1  kernels=2" in frame

    def test_engine_line_absent_without_the_counter(self):
        frame = render_dashboard(canned_stats(), canned_metrics_text())
        assert "cycle_mine engines" not in frame

    def test_top_level_slow_queries_key_is_honoured(self):
        stats = {"shards": 1,
                 "slow_queries": {"threshold_ms": 50.0, "requests": 10,
                                  "slow": 1, "reservoir_capacity": 4,
                                  "entries": []}}
        assert "slow queries (>= 50 ms): 1/10 sampled" \
            in render_dashboard(stats)


class TestRunTop:
    def test_unreachable_server_exits_nonzero_with_a_message(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:1", once=True, out=out)
        assert code == 1
        assert "cannot reach" in out.getvalue()
