"""Slow-query sampling: threshold, deterministic reservoir, sink lines."""

import json

import pytest

from repro.obs.logs import RequestLog
from repro.obs.trace import Trace


def feed(log: RequestLog, latencies) -> None:
    for latency in latencies:
        log.record(endpoint="/expand", latency_ms=latency)


class TestThreshold:
    def test_fast_requests_only_count(self):
        log = RequestLog(slow_ms=100.0)
        assert log.record(endpoint="/expand", latency_ms=99.999) is False
        assert log.requests == 1
        assert log.slow == 0
        assert log.entries() == []

    def test_threshold_is_inclusive(self):
        log = RequestLog(slow_ms=100.0)
        assert log.record(endpoint="/expand", latency_ms=100.0) is True
        assert log.slow == 1

    def test_zero_threshold_samples_everything(self):
        log = RequestLog(slow_ms=0.0)
        assert log.record(endpoint="/expand", latency_ms=0.0) is True

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RequestLog(capacity=0)
        with pytest.raises(ValueError):
            RequestLog(slow_ms=-1.0)


class TestReservoirDeterminism:
    STREAM = [150.0, 110.0, 300.0, 110.0, 210.0, 120.0, 500.0, 105.0]

    def test_same_stream_yields_the_same_reservoir(self):
        first, second = RequestLog(slow_ms=100, capacity=3), \
            RequestLog(slow_ms=100, capacity=3)
        feed(first, self.STREAM)
        feed(second, self.STREAM)
        assert first.entries() == second.entries()

    def test_slowest_k_are_retained_in_order(self):
        log = RequestLog(slow_ms=100, capacity=3)
        feed(log, self.STREAM)
        assert [e["latency_ms"] for e in log.entries()] == [500.0, 300.0, 210.0]
        assert log.slow == len(self.STREAM)

    def test_ties_break_toward_the_earlier_request(self):
        log = RequestLog(slow_ms=100, capacity=2)
        feed(log, [110.0, 110.0, 110.0])
        kept = log.entries()
        # seq 3 was displaced: equal latency, later arrival loses.
        assert [e["seq"] for e in kept] == [1, 2]

    def test_sequence_numbers_count_all_requests_not_just_slow(self):
        log = RequestLog(slow_ms=100, capacity=4)
        feed(log, [10.0, 200.0, 10.0, 300.0])
        assert [e["seq"] for e in log.entries()] == [4, 2]
        assert log.requests == 4

    def test_snapshot_shape(self):
        log = RequestLog(slow_ms=100, capacity=2)
        feed(log, [50.0, 150.0])
        snapshot = log.snapshot()
        assert snapshot["threshold_ms"] == 100.0
        assert snapshot["requests"] == 2
        assert snapshot["slow"] == 1
        assert snapshot["reservoir_capacity"] == 2
        assert len(snapshot["entries"]) == 1


class TestEntryContents:
    def test_trace_contributes_id_and_stage_totals(self):
        trace = Trace(trace_id="t-slow")
        trace.add("link", 1.0)
        trace.add("rank", 2.0, shard=0)
        trace.add("rank", 3.0, shard=1)
        log = RequestLog(slow_ms=0.0)
        log.record(endpoint="/expand", latency_ms=6.0, status=200,
                   query="graph mining", trace=trace)
        (entry,) = log.entries()
        assert entry["trace_id"] == "t-slow"
        assert entry["stage_ms"] == {"link": 1.0, "rank": 5.0}
        assert entry["status"] == 200
        assert entry["query"] == "graph mining"

    def test_serialised_trace_id_and_stages_accepted_directly(self):
        log = RequestLog(slow_ms=0.0)
        log.record(endpoint="/expand", latency_ms=5.0,
                   trace_id="t-wire", stages={"link": 0.5})
        (entry,) = log.entries()
        assert entry["trace_id"] == "t-wire"
        assert entry["stage_ms"] == {"link": 0.5}

    def test_sink_gets_one_json_line_per_slow_request(self):
        lines: list[str] = []
        log = RequestLog(slow_ms=100.0, sink=lines.append)
        feed(log, [50.0, 150.0, 60.0, 250.0])
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["latency_ms"] for p in parsed] == [150.0, 250.0]
        assert all(p["event"] == "slow_query" for p in parsed)
        assert all(line.endswith("\n") for line in lines)

    def test_sink_lines_survive_reservoir_eviction(self):
        lines: list[str] = []
        log = RequestLog(slow_ms=100.0, capacity=1, sink=lines.append)
        feed(log, [150.0, 300.0])
        assert len(lines) == 2  # the log is append-only ...
        assert [e["latency_ms"] for e in log.entries()] == [300.0]  # summary


class TestRecentQueries:
    """The live-update warm-up feed: dedup, bounds, and age-out."""

    def _log(self, **kwargs):
        return RequestLog(slow_ms=1000.0, **kwargs)

    def test_successful_queries_are_remembered_in_order(self):
        log = self._log()
        for query in ("alpha", "beta", "alpha"):
            log.record(endpoint="/expand", latency_ms=1.0, query=query,
                       status=200)
        # deduplicated, ordered by last-seen: beta was seen before the
        # second alpha
        assert log.recent_queries() == ["beta", "alpha"]

    def test_failures_and_queryless_requests_are_not_remembered(self):
        log = self._log()
        log.record(endpoint="/expand", latency_ms=1.0, query="bad", status=400)
        log.record(endpoint="/expand", latency_ms=1.0, query="dead", status=503)
        log.record(endpoint="/stats", latency_ms=1.0)
        log.record(endpoint="/expand", latency_ms=1.0, query="good")
        assert log.recent_queries() == ["good"]

    def test_capacity_evicts_the_least_recently_seen(self):
        log = self._log(recent_capacity=2)
        for query in ("one", "two", "three"):
            log.record(endpoint="/expand", latency_ms=1.0, query=query)
        assert log.recent_queries() == ["two", "three"]

    def test_age_out_is_enforced_on_read(self):
        now = [0.0]
        log = self._log(recent_max_age_s=10.0, clock=lambda: now[0])
        log.record(endpoint="/expand", latency_ms=1.0, query="stale")
        now[0] = 6.0
        log.record(endpoint="/expand", latency_ms=1.0, query="fresh")
        now[0] = 11.0  # "stale" is now 11s old, "fresh" 5s
        assert log.recent_queries() == ["fresh"]
        assert log.recent_queries(max_age_s=100.0) == ["fresh"]  # gone for good

    def test_invalid_recent_parameters_rejected(self):
        with pytest.raises(ValueError):
            RequestLog(recent_capacity=0)
        with pytest.raises(ValueError):
            RequestLog(recent_max_age_s=-1.0)
