"""Metrics primitives: bucket math, exposition render, parse-back."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus_text,
)


class TestHistogramBucketMath:
    def test_observation_lands_in_first_bucket_with_bound_at_or_above(self):
        hist = Histogram("h", "help", buckets=(0.1, 0.5, 1.0))
        hist.observe(0.05)   # below the first bound
        hist.observe(0.1)    # exactly on a bound: le semantics include it
        hist.observe(0.3)
        hist.observe(1.0)
        cumulative, total, count = hist.snapshot()
        # buckets are cumulative: le=0.1, le=0.5, le=1.0, +Inf
        assert cumulative == [2, 3, 4, 4]
        assert count == 4
        assert total == pytest.approx(0.05 + 0.1 + 0.3 + 1.0)

    def test_overflow_lands_only_in_inf_bucket(self):
        hist = Histogram("h", "help", buckets=(0.1, 0.5))
        hist.observe(7.0)
        cumulative, _, count = hist.snapshot()
        assert cumulative == [0, 0, 1]
        assert count == 1

    def test_empty_series_snapshot_is_zeroes(self):
        hist = Histogram("h", "help", buckets=(0.1,))
        assert hist.snapshot() == ([0, 0], 0.0, 0)

    def test_labelled_series_are_independent(self):
        hist = Histogram("h", "help", ("stage",), buckets=(1.0,))
        hist.observe(0.5, stage="link")
        hist.observe(2.0, stage="rank")
        assert hist.snapshot(stage="link") == ([1, 1], 0.5, 1)
        assert hist.snapshot(stage="rank") == ([0, 1], 2.0, 1)

    def test_buckets_must_be_strictly_increasing_and_finite(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(0.5, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(0.5, 0.1))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(0.5, math.inf))
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())

    def test_default_buckets_are_valid(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        Histogram("h", "help")  # must construct without error


class TestCounterAndGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("c_total", "help", ("path",))
        counter.inc(path="a")
        counter.inc(2, path="a")
        assert counter.value(path="a") == 3
        assert counter.value(path="never") == 0
        with pytest.raises(ValueError):
            counter.inc(-1, path="a")

    def test_label_set_must_match_declaration_exactly(self):
        counter = Counter("c_total", "help", ("path",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(path="a", extra="b")

    def test_gauge_sets_and_moves_both_ways(self):
        gauge = Gauge("g", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4


class TestRegistry:
    def test_reregistration_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("path",))
        second = registry.counter("c_total", "help", ("path",))
        assert first is second

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("path",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help", ("path",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "help", ("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9bad", "help")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "help", ("bad-label",))


class TestRenderParseRoundTrip:
    def test_full_document_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_requests_total", "Requests.", ("path",))
        gauge = registry.gauge("rt_uptime_seconds", "Uptime.")
        hist = registry.histogram(
            "rt_latency_seconds", "Latency.", ("path",), buckets=(0.1, 1.0)
        )
        counter.inc(3, path="/expand")
        counter.inc(path="/stats")
        gauge.set(12.5)
        hist.observe(0.05, path="/expand")
        hist.observe(0.5, path="/expand")

        parsed = parse_prometheus_text(registry.render())
        samples = parsed["samples"]
        key = lambda name, **labels: (name, frozenset(labels.items()))  # noqa: E731
        assert samples[key("rt_requests_total", path="/expand")] == 3
        assert samples[key("rt_requests_total", path="/stats")] == 1
        assert samples[key("rt_uptime_seconds")] == 12.5
        assert samples[key("rt_latency_seconds_bucket", path="/expand", le="0.1")] == 1
        assert samples[key("rt_latency_seconds_bucket", path="/expand", le="1")] == 2
        assert samples[key("rt_latency_seconds_bucket", path="/expand", le="+Inf")] == 2
        assert samples[key("rt_latency_seconds_count", path="/expand")] == 2
        assert samples[key("rt_latency_seconds_sum", path="/expand")] == \
            pytest.approx(0.55)
        assert parsed["types"]["rt_requests_total"] == "counter"
        assert parsed["types"]["rt_uptime_seconds"] == "gauge"
        assert parsed["types"]["rt_latency_seconds"] == "histogram"
        assert parsed["helps"]["rt_requests_total"] == "Requests."

    def test_label_values_with_quotes_and_newlines_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "help", ("q",))
        tricky = 'say "hi"\nback\\slash'
        counter.inc(q=tricky)
        parsed = parse_prometheus_text(registry.render())
        assert parsed["samples"][("esc_total", frozenset({("q", tricky)}))] == 1

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('name{unclosed="x} 1\n')
        with pytest.raises(ValueError):
            parse_prometheus_text("name 1 2 3\n")


class TestHistogramQuantile:
    def test_interpolates_inside_the_target_bucket(self):
        # 10 observations <= 1.0, 10 more in (1.0, 2.0]: p50 = 1.0, p75 = 1.5
        buckets = [(1.0, 10.0), (2.0, 20.0), (math.inf, 20.0)]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(1.0)
        assert histogram_quantile(buckets, 0.75) == pytest.approx(1.5)
        assert histogram_quantile(buckets, 1.0) == pytest.approx(2.0)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        buckets = [(1.0, 0.0), (math.inf, 5.0)]
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile([], 0.5) == 0.0
        assert histogram_quantile([(1.0, 0.0), (math.inf, 0.0)], 0.5) == 0.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            histogram_quantile([(1.0, 1.0)], 1.5)

    def test_round_trip_from_rendered_histogram(self):
        """Quantiles survive render -> parse -> quantile (the top path)."""
        registry = MetricsRegistry()
        hist = registry.histogram("q_seconds", "help", buckets=(0.1, 0.2, 0.4))
        for value in (0.05, 0.15, 0.15, 0.3):
            hist.observe(value)
        parsed = parse_prometheus_text(registry.render())
        pairs = []
        for (name, labels), value in parsed["samples"].items():
            if name == "q_seconds_bucket":
                bound = dict(labels)["le"]
                upper = math.inf if bound == "+Inf" else float(bound)
                pairs.append((upper, value))
        assert histogram_quantile(pairs, 0.5) == pytest.approx(0.15, abs=0.05)
