"""ServingMetrics: folding traces into families, scrape-time gauges."""

from types import SimpleNamespace

from repro.obs.metrics import parse_prometheus_text
from repro.obs.serving import ServingMetrics
from repro.obs.trace import Trace


def make_trace() -> Trace:
    trace = Trace()
    trace.add("link", 1.0, cached=True)
    trace.add("expand", 4.0, shard=1, cached=False)
    trace.add("cycle_mine", 3.5, shard=1)
    trace.add("rank", 2.0, shard=0, phase="score")
    trace.add("rank", 2.5, shard=1, phase="score")
    trace.add("merge", 0.5, phase="topk")
    return trace


class TestObserveRequest:
    def test_counters_and_histograms_advance(self):
        metrics = ServingMetrics()
        metrics.observe_request("expand_query", make_trace(), 0.015)
        assert metrics.requests.value(path="expand_query") == 1
        assert metrics.errors.value(path="expand_query") == 0
        _, total, count = metrics.request_latency.snapshot(path="expand_query")
        assert (total, count) == (0.015, 1)
        # Fan-out stage: two rank spans fold into one stage histogram ...
        assert metrics.stage_latency.snapshot(stage="rank")[2] == 2
        # ... and split per shard.
        assert metrics.shard_stage_latency.snapshot(shard=0, stage="rank")[2] == 1
        assert metrics.shard_stage_latency.snapshot(shard=1, stage="rank")[2] == 1
        # Shardless spans only hit the stage family.
        assert metrics.stage_latency.snapshot(stage="link")[2] == 1

    def test_cache_outcomes_derive_from_span_labels(self):
        metrics = ServingMetrics()
        metrics.observe_request("expand_query", make_trace(), 0.01)
        assert metrics.cache_lookups.value(cache="link", result="hit") == 1
        assert metrics.cache_lookups.value(cache="expansion", result="miss") == 1
        assert metrics.cache_lookups.value(cache="expansion", result="hit") == 0

    def test_spans_without_cached_label_do_not_count_as_lookups(self):
        metrics = ServingMetrics()
        trace = Trace()
        trace.add("link", 1.0)  # e.g. the batched link pass
        metrics.observe_request("batch_expand", trace, 0.01)
        assert metrics.cache_lookups.value(cache="link", result="hit") == 0
        assert metrics.cache_lookups.value(cache="link", result="miss") == 0

    def test_error_requests_count_twice(self):
        metrics = ServingMetrics()
        metrics.observe_request("expand_query", None, 0.002, error=True)
        assert metrics.requests.value(path="expand_query") == 1
        assert metrics.errors.value(path="expand_query") == 1

    def test_traceless_request_still_observes_latency(self):
        metrics = ServingMetrics()
        metrics.observe_request("batch_expand", None, 0.02)
        assert metrics.request_latency.snapshot(path="batch_expand")[2] == 1

    def test_cycle_mine_engine_label_feeds_the_engine_counter(self):
        metrics = ServingMetrics()
        trace = Trace()
        trace.add("cycle_mine", 3.0, shard=0, engine="kernels")
        trace.add("cycle_mine", 9.0, shard=1, engine="dfs")
        metrics.observe_request("expand_query", trace, 0.02)
        metrics.observe_request("expand_query", trace, 0.02)
        assert metrics.cycle_mine.value(engine="kernels") == 2
        assert metrics.cycle_mine.value(engine="dfs") == 2

    def test_cycle_mine_span_without_engine_label_is_not_counted(self):
        metrics = ServingMetrics()
        metrics.observe_request("expand_query", make_trace(), 0.01)
        assert metrics.cycle_mine.value(engine="kernels") == 0
        assert metrics.cycle_mine.value(engine="dfs") == 0
        # The stage histogram still sees the span either way.
        assert metrics.stage_latency.snapshot(stage="cycle_mine")[2] == 1


class TestScrapeTimeGauges:
    def test_update_from_stats_refreshes_gauges(self):
        metrics = ServingMetrics()
        stats = SimpleNamespace(
            uptime_s=12.3456,
            requests_total=10,
            queries=7,
            errors=1,
            per_shard_inflight=[2, 0],
        )
        metrics.update_from_stats(stats)
        assert metrics.uptime.value() == 12.346
        assert metrics.inflight.value() == 2  # 10 offered - 7 done - 1 failed
        assert metrics.shard_inflight.value(shard=0) == 2
        assert metrics.shard_inflight.value(shard=1) == 0

    def test_inflight_clamps_at_zero(self):
        metrics = ServingMetrics()
        stats = SimpleNamespace(
            uptime_s=1.0, requests_total=5, queries=5, errors=1,
            per_shard_inflight=[],
        )
        metrics.update_from_stats(stats)
        assert metrics.inflight.value() == 0


class TestExposition:
    def test_render_parses_back_with_all_families(self):
        metrics = ServingMetrics()
        metrics.observe_request("expand_query", make_trace(), 0.015)
        metrics.update_from_stats(SimpleNamespace(
            uptime_s=3.0, requests_total=1, queries=1, errors=0,
            per_shard_inflight=[0, 0],
        ))
        parsed = parse_prometheus_text(metrics.render())
        for family in (
            "repro_requests_total",
            "repro_errors_total",
            "repro_request_seconds",
            "repro_stage_seconds",
            "repro_shard_stage_seconds",
            "repro_cache_lookups_total",
            "repro_cycle_mine_total",
            "repro_inflight_requests",
            "repro_shard_inflight",
            "repro_uptime_seconds",
        ):
            assert family in parsed["types"], family

    def test_two_routers_can_share_one_registry(self):
        first = ServingMetrics()
        second = ServingMetrics(first.registry)  # idempotent re-registration
        second.requests.inc(path="expand_query")
        assert first.requests.value(path="expand_query") == 1
