"""Request-scoped traces: recording, contextvar scoping, thread carry."""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs import trace as tracing
from repro.obs.trace import Trace, carry_context, current_trace, start_trace
from repro.service.async_router import ExecutorShardAdapter


class TestTraceRecording:
    def test_span_records_stage_shard_and_labels(self):
        trace = Trace()
        with trace.span("rank", shard=2, phase="counts"):
            pass
        (span,) = trace.spans
        assert span.stage == "rank"
        assert span.shard == 2
        assert span.labels == {"phase": "counts"}
        assert span.duration_ms >= 0.0
        assert span.start_ms >= 0.0

    def test_span_body_can_set_labels_after_the_fact(self):
        trace = Trace()
        with trace.span("link") as labels:
            labels["cached"] = True
        (span,) = trace.spans
        assert span.labels == {"cached": True}

    def test_shard_key_in_label_dict_overrides_argument(self):
        trace = Trace()
        with trace.span("expand", shard=0) as labels:
            labels["shard"] = 7
        (span,) = trace.spans
        assert span.shard == 7
        assert "shard" not in span.labels

    def test_stage_totals_sum_fanout_spans(self):
        trace = Trace()
        trace.add("rank", 2.0, shard=0)
        trace.add("rank", 3.0, shard=1)
        trace.add("link", 1.0)
        assert trace.stage_totals_ms() == {"rank": 5.0, "link": 1.0}

    def test_as_dict_is_json_shaped(self):
        trace = Trace(trace_id="t-fixed")
        trace.annotate(endpoint="/expand")
        trace.add("link", 1.5, cached=False)
        payload = trace.as_dict()
        assert payload["trace_id"] == "t-fixed"
        assert payload["labels"] == {"endpoint": "/expand"}
        assert payload["spans"][0]["stage"] == "link"
        assert payload["spans"][0]["labels"] == {"cached": False}
        assert payload["stage_totals_ms"] == {"link": 1.5}

    def test_trace_ids_are_unique(self):
        assert Trace().trace_id != Trace().trace_id


class TestContextScoping:
    def test_no_trace_means_module_span_is_a_noop(self):
        assert current_trace() is None
        with tracing.span("link") as labels:
            labels["cached"] = True  # discarded, but must not raise
        assert current_trace() is None

    def test_start_trace_activates_and_restores(self):
        with start_trace() as outer:
            assert current_trace() is outer
            with tracing.span("link"):
                pass
            with start_trace() as inner:
                assert current_trace() is inner
                with tracing.span("rank"):
                    pass
            assert current_trace() is outer
        assert current_trace() is None
        assert [s.stage for s in outer.spans] == ["link"]
        assert [s.stage for s in inner.spans] == ["rank"]

    def test_module_annotate_reaches_the_active_trace(self):
        tracing.annotate(ignored=True)  # no active trace: no-op
        with start_trace() as trace:
            tracing.annotate(batch=3)
        assert trace.labels == {"batch": 3}


class TestThreadCarry:
    def test_plain_submit_does_not_see_the_trace(self):
        """The control: without carry_context the worker thread is blind."""
        with ThreadPoolExecutor(max_workers=1) as pool:
            with start_trace():
                assert pool.submit(current_trace).result() is None

    def test_carry_context_delivers_the_trace_to_the_worker(self):
        def record():
            with tracing.span("expand", shard=1):
                pass
            return current_trace()

        with ThreadPoolExecutor(max_workers=1) as pool:
            with start_trace() as trace:
                seen = pool.submit(carry_context(record)).result()
        assert seen is trace
        assert [(s.stage, s.shard) for s in trace.spans] == [("expand", 1)]

    def test_one_wrapped_callable_fans_out_across_map(self):
        def record(shard_id):
            with tracing.span("rank", shard=shard_id):
                time.sleep(0.001)
            return shard_id

        with ThreadPoolExecutor(max_workers=4) as pool:
            with start_trace() as trace:
                results = list(pool.map(carry_context(record), range(4)))
        assert results == [0, 1, 2, 3]
        assert sorted(s.shard for s in trace.spans) == [0, 1, 2, 3]

    def test_concurrent_requests_keep_their_spans_apart(self):
        """Two request threads sharing one pool must not cross-pollinate."""
        pool = ThreadPoolExecutor(max_workers=4)
        barrier = threading.Barrier(2)
        traces: dict[int, Trace] = {}

        def request(request_id: int) -> None:
            def work(shard_id):
                barrier.wait(timeout=5)  # force real overlap between requests
                with tracing.span("rank", shard=shard_id, req=request_id):
                    pass

            with start_trace() as trace:
                traces[request_id] = trace
                list(pool.map(carry_context(work), [request_id]))

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.shutdown()
        for request_id in range(2):
            spans = traces[request_id].spans
            assert len(spans) == 1
            assert spans[0].labels == {"req": request_id}


class _FakeEngine:
    def leaf_collection_counts(self, root):
        return {"root": root}

    def search_with_background(self, root, background, top_k):
        return []


class _FakeWorker:
    """Just enough of ExpansionService for the adapter's five calls."""

    def __init__(self):
        self.engine = _FakeEngine()

    def expand_seeds(self, seeds):
        # Instrumented exactly like the real worker: records into
        # whatever trace the submitting request carried over.
        with tracing.span("expand", shard=0) as labels:
            labels["cached"] = False
        return (frozenset(seeds), False)


class TestExecutorShardAdapterBoundary:
    def test_spans_cross_the_run_in_executor_boundary(self):
        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                adapter = ExecutorShardAdapter(
                    _FakeWorker(), executor, shard_id=5
                )
                with start_trace() as trace:
                    await adapter.expand_seeds(frozenset({1}))
                    await adapter.leaf_collection_counts("root")
                return trace

        trace = asyncio.run(scenario())
        stages = [(s.stage, s.shard) for s in trace.spans]
        assert ("expand", 0) in stages
        assert ("rank", 5) in stages
        rank = next(s for s in trace.spans if s.stage == "rank")
        assert rank.labels == {"phase": "counts"}

    def test_concurrent_adapter_calls_isolate_traces(self):
        async def scenario():
            with ThreadPoolExecutor(max_workers=4) as executor:
                adapters = [
                    ExecutorShardAdapter(_FakeWorker(), executor, shard_id=i)
                    for i in range(2)
                ]

                async def one(request_id: int) -> Trace:
                    with start_trace() as trace:
                        await asyncio.gather(*(
                            adapter.leaf_collection_counts(request_id)
                            for adapter in adapters
                        ))
                    return trace

                return await asyncio.gather(one(0), one(1))

        first, second = asyncio.run(scenario())
        assert first is not second
        for trace in (first, second):
            assert sorted(s.shard for s in trace.spans) == [0, 1]
            assert all(s.stage == "rank" for s in trace.spans)
