"""CompactIndex: exact equivalence with the dict index + blob failures."""

import pytest

from repro.errors import IndexError_
from repro.retrieval import (
    CompactIndex,
    DirichletSmoothing,
    PositionalIndex,
    SearchEngine,
    collect_phrase_stats,
    phrase_occurrences,
)

DOCS = [
    ("doc-b", "the bridge of sighs crosses the rio di palazzo"),
    ("doc-a", "gondola rides pass under the bridge of sighs at dusk"),
    ("doc-c", "venice carnival masks and gondola parades"),
    ("doc-d", "sighs bridge bridge sighs"),
    ("doc-e", ""),
]


@pytest.fixture()
def dict_index() -> PositionalIndex:
    index = PositionalIndex()
    index.add_documents(DOCS)
    return index


@pytest.fixture()
def compact(dict_index) -> CompactIndex:
    return CompactIndex.from_index(dict_index)


class TestEquivalence:
    def test_statistics_match(self, dict_index, compact):
        assert compact.num_documents == dict_index.num_documents
        assert compact.total_tokens == dict_index.total_tokens
        assert compact.vocabulary_size == dict_index.vocabulary_size
        assert list(compact.terms()) == list(dict_index.terms())
        assert set(compact.doc_ids()) == set(dict_index.doc_ids())

    def test_per_term_values_match(self, dict_index, compact):
        for term in dict_index.terms():
            assert compact.document_frequency(term) == \
                dict_index.document_frequency(term)
            assert compact.collection_frequency(term) == \
                dict_index.collection_frequency(term)
            # Bit-identical, not approx: same division of the same ints.
            assert compact.collection_probability(term) == \
                dict_index.collection_probability(term)
            assert compact.documents_containing(term) == \
                dict_index.documents_containing(term)
            assert [(p.doc_id, p.positions) for p in compact.postings(term)] == \
                   [(p.doc_id, p.positions) for p in dict_index.postings(term)]

    def test_unknown_term_and_document(self, dict_index, compact):
        assert compact.collection_frequency("zzz") == 0
        assert compact.collection_probability("zzz") == \
            dict_index.collection_probability("zzz")
        assert compact.documents_containing("zzz") == set()
        assert compact.positions("bridge", "nope") == []
        assert compact.term_frequency("zzz", "doc-a") == 0
        with pytest.raises(IndexError_):
            compact.document_length("nope")

    def test_conjunctive_lookup_matches(self, dict_index, compact):
        for terms in (["bridge"], ["bridge", "sighs"], ["bridge", "zzz"],
                      ["gondola", "bridge"], []):
            assert compact.documents_containing_all(terms) == \
                dict_index.documents_containing_all(terms)

    def test_phrase_machinery_matches(self, dict_index, compact):
        phrase = ("bridge", "of", "sighs")
        for doc_id, _ in DOCS:
            assert phrase_occurrences(compact, phrase, doc_id) == \
                phrase_occurrences(dict_index, phrase, doc_id)
        mine = collect_phrase_stats(compact, phrase)
        reference = collect_phrase_stats(dict_index, phrase)
        assert mine.collection_frequency == reference.collection_frequency
        assert mine.per_document == reference.per_document

    def test_search_scores_bit_identical(self, dict_index, compact):
        reference = SearchEngine(
            smoothing=DirichletSmoothing(mu=300.0), index=dict_index
        )
        mine = SearchEngine(smoothing=DirichletSmoothing(mu=300.0), index=compact)
        for query in ("bridge of sighs", "gondola venice", "sighs"):
            expected = reference.search(query, top_k=10)
            got = mine.search(query, top_k=10)
            assert [(r.doc_id, r.score, r.rank) for r in got] == \
                   [(r.doc_id, r.score, r.rank) for r in expected]

    def test_freezing_a_compact_index_is_identity(self, compact):
        assert CompactIndex.from_index(compact) is compact

    def test_payload_round_trips_to_dict_index(self, dict_index, compact):
        """Same contents up to dict ordering (compact interns documents
        in sorted order; the dict index keeps insertion order)."""
        rebuilt = PositionalIndex.from_payload(compact.to_payload())
        mine, reference = rebuilt.to_payload(), dict_index.to_payload()
        assert sorted(mine["documents"]) == sorted(reference["documents"])
        assert mine["postings"] == reference["postings"]


class TestFrozen:
    def test_mutation_raises(self, compact):
        with pytest.raises(IndexError_, match="frozen"):
            compact.add_document("new", "text")
        with pytest.raises(IndexError_, match="frozen"):
            compact.add_documents([("new", "text")])


class TestBlob:
    def test_round_trip_in_memory(self, dict_index, compact):
        again = CompactIndex.from_blob(compact.to_blob())
        assert again.total_tokens == dict_index.total_tokens
        assert list(again.terms()) == list(dict_index.terms())
        for term in dict_index.terms():
            assert again.collection_probability(term) == \
                dict_index.collection_probability(term)
            assert [(p.doc_id, p.positions) for p in again.postings(term)] == \
                   [(p.doc_id, p.positions) for p in dict_index.postings(term)]

    def test_mmap_round_trip_survives_reopen(self, dict_index, compact, tmp_path):
        """Save, drop every in-memory object, and reload from disk — the
        mmap-backed index must answer exactly like the original."""
        path = tmp_path / "index.bin"
        compact.save(path)
        del compact
        reloaded = CompactIndex.load(path)
        assert reloaded.num_documents == dict_index.num_documents
        for term in dict_index.terms():
            assert reloaded.documents_containing(term) == \
                dict_index.documents_containing(term)
        # A second, independent mapping of the same file works too
        # (simulates a process restart reopening the snapshot).
        again = CompactIndex.load(path)
        assert again.total_tokens == reloaded.total_tokens

    def test_truncated_blob_rejected(self, compact, tmp_path):
        blob = compact.to_blob()
        for cut in (4, 10, len(blob) // 2, len(blob) - 3):
            with pytest.raises(IndexError_):
                CompactIndex.from_blob(blob[:cut])

    def test_foreign_magic_rejected(self, compact):
        blob = bytearray(compact.to_blob())
        blob[:8] = b"NOTMAGIC"
        with pytest.raises(IndexError_, match="magic"):
            CompactIndex.from_blob(bytes(blob))

    def test_garbage_header_rejected(self):
        blob = b"RPCIDX1\n" + b"\xff" * 64
        with pytest.raises(IndexError_):
            CompactIndex.from_blob(blob)

    def test_tampered_section_offset_rejected(self, compact):
        """A bit flip inside a header offset digit still parses as JSON;
        the section table validation must reject it rather than serve
        views over the wrong bytes."""
        import json
        import struct

        blob = compact.to_blob()
        header_len = struct.unpack("<I", blob[8:12])[0]
        header = json.loads(blob[12:12 + header_len])
        name = next(iter(header["__sections__"]))
        for bad_offset in (-8, 3):  # negative, unaligned
            tampered = json.loads(json.dumps(header))
            tampered["__sections__"][name][0] = bad_offset
            header_bytes = json.dumps(tampered).encode()
            rebuilt = blob[:8] + struct.pack("<I", len(header_bytes)) \
                + header_bytes + blob[12 + header_len:]
            with pytest.raises(IndexError_):
                CompactIndex.from_blob(rebuilt)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(IndexError_, match="missing"):
            CompactIndex.load(tmp_path / "absent.bin")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(IndexError_):
            CompactIndex.load(path)

    def test_empty_index_round_trips(self):
        empty = CompactIndex.from_index(PositionalIndex())
        again = CompactIndex.from_blob(empty.to_blob())
        assert again.num_documents == 0
        assert again.total_tokens == 0
        assert again.collection_probability("anything") == 0.0
