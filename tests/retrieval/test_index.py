"""Unit tests for the positional inverted index."""

import pytest

from repro.errors import IndexError_
from repro.retrieval import PositionalIndex


@pytest.fixture
def index():
    idx = PositionalIndex()
    idx.add_document("d1", "gondola in venice gondola")
    idx.add_document("d2", "venice carnival")
    idx.add_document("d3", "summer field in belgium")
    return idx


class TestBuilding:
    def test_add_returns_token_count(self):
        idx = PositionalIndex()
        assert idx.add_document("d1", "three word text") == 3

    def test_duplicate_doc_id_rejected(self, index):
        with pytest.raises(IndexError_, match="already indexed"):
            index.add_document("d1", "again")

    def test_add_documents_bulk(self):
        idx = PositionalIndex()
        added = idx.add_documents([("a", "one"), ("b", "two three")])
        assert added == 2
        assert idx.num_documents == 2

    def test_add_documents_equals_one_by_one(self):
        """The bulk path (tokenize_many + per-term folding) must produce
        byte-for-byte the same index as repeated add_document calls."""
        docs = [("a", "to be or not to be"), ("b", ""),
                ("c", "be the bridge of sighs"), ("d", "sighs sighs be")]
        bulk, single = PositionalIndex(), PositionalIndex()
        bulk.add_documents(docs)
        for doc_id, text in docs:
            single.add_document(doc_id, text)
        assert bulk.to_payload() == single.to_payload()
        assert list(bulk.terms()) == list(single.terms())
        for term in single.terms():
            assert bulk.collection_frequency(term) == \
                single.collection_frequency(term)

    def test_add_documents_rejects_duplicates_mid_batch(self):
        idx = PositionalIndex()
        with pytest.raises(IndexError_, match="already indexed"):
            idx.add_documents([("a", "one"), ("a", "again")])

    def test_empty_document_indexed(self):
        idx = PositionalIndex()
        assert idx.add_document("empty", "") == 0
        assert idx.document_length("empty") == 0


class TestStatistics:
    def test_num_documents(self, index):
        assert index.num_documents == 3

    def test_total_tokens(self, index):
        assert index.total_tokens == 4 + 2 + 4

    def test_vocabulary_size(self, index):
        # gondola in venice carnival summer field belgium
        assert index.vocabulary_size == 7

    def test_document_length(self, index):
        assert index.document_length("d1") == 4

    def test_document_length_unknown(self, index):
        with pytest.raises(IndexError_, match="unknown document"):
            index.document_length("nope")

    def test_document_frequency(self, index):
        assert index.document_frequency("venice") == 2
        assert index.document_frequency("gondola") == 1
        assert index.document_frequency("missing") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("gondola") == 2
        assert index.collection_frequency("missing") == 0

    def test_collection_probability(self, index):
        assert index.collection_probability("gondola") == pytest.approx(2 / 10)

    def test_collection_probability_unseen_is_halved_count(self, index):
        assert index.collection_probability("zzz") == pytest.approx(0.5 / 10)

    def test_collection_probability_empty_index(self):
        assert PositionalIndex().collection_probability("x") == 0.0

    def test_contains(self, index):
        assert "d1" in index
        assert "dx" not in index

    def test_doc_ids(self, index):
        assert set(index.doc_ids()) == {"d1", "d2", "d3"}

    def test_repr(self, index):
        assert "PositionalIndex(" in repr(index)


class TestPostings:
    def test_positions(self, index):
        assert index.positions("gondola", "d1") == [0, 3]
        assert index.positions("gondola", "d2") == []

    def test_term_frequency(self, index):
        assert index.term_frequency("gondola", "d1") == 2
        assert index.term_frequency("venice", "d2") == 1
        assert index.term_frequency("venice", "d3") == 0

    def test_postings_sorted_by_doc(self, index):
        postings = index.postings("venice")
        assert [p.doc_id for p in postings] == ["d1", "d2"]
        assert postings[0].term_frequency == 1

    def test_postings_missing_term(self, index):
        assert index.postings("missing") == []

    def test_posting_repr(self, index):
        assert "Posting(" in repr(index.postings("venice")[0])

    def test_documents_containing(self, index):
        assert index.documents_containing("in") == {"d1", "d3"}

    def test_documents_containing_all(self, index):
        assert index.documents_containing_all(["venice", "gondola"]) == {"d1"}
        assert index.documents_containing_all(["venice", "belgium"]) == set()

    def test_documents_containing_all_empty_terms(self, index):
        assert index.documents_containing_all([]) == set()

    def test_documents_containing_all_unknown_term(self, index):
        assert index.documents_containing_all(["venice", "zzz"]) == set()
