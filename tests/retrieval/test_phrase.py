"""Unit tests for exact phrase matching."""

import pytest

from repro.retrieval import (
    PositionalIndex,
    collect_phrase_stats,
    phrase_documents,
    phrase_occurrences,
)


@pytest.fixture
def index():
    idx = PositionalIndex()
    idx.add_document("d1", "the bridge of sighs in venice")
    idx.add_document("d2", "sighs of the bridge")  # words present, order wrong
    idx.add_document("d3", "bridge of sighs and bridge of sighs")  # twice
    idx.add_document("d4", "grand canal of venice")
    return idx


class TestPhraseOccurrences:
    def test_simple_match(self, index):
        assert phrase_occurrences(index, ("bridge", "of", "sighs"), "d1") == 1

    def test_order_matters(self, index):
        assert phrase_occurrences(index, ("bridge", "of", "sighs"), "d2") == 0

    def test_multiple_occurrences(self, index):
        assert phrase_occurrences(index, ("bridge", "of", "sighs"), "d3") == 2

    def test_single_token_phrase_is_tf(self, index):
        assert phrase_occurrences(index, ("bridge",), "d3") == 2

    def test_empty_phrase(self, index):
        assert phrase_occurrences(index, (), "d1") == 0

    def test_absent_word(self, index):
        assert phrase_occurrences(index, ("bridge", "of", "gold"), "d1") == 0

    def test_contiguity_required(self, index):
        # d4 has "grand canal of venice": "canal venice" is not contiguous.
        assert phrase_occurrences(index, ("canal", "venice"), "d4") == 0
        assert phrase_occurrences(index, ("of", "venice"), "d4") == 1

    def test_repeated_token_phrase(self):
        idx = PositionalIndex()
        idx.add_document("d", "ha ha ha")
        assert phrase_occurrences(idx, ("ha", "ha"), "d") == 2


class TestPhraseDocuments:
    def test_finds_only_exact_matches(self, index):
        assert phrase_documents(index, ("bridge", "of", "sighs")) == {"d1", "d3"}

    def test_single_token(self, index):
        assert phrase_documents(index, ("venice",)) == {"d1", "d4"}

    def test_empty_phrase(self, index):
        assert phrase_documents(index, ()) == set()

    def test_no_match(self, index):
        assert phrase_documents(index, ("missing", "phrase")) == set()


class TestPhraseStats:
    def test_collection_frequency(self, index):
        stats = collect_phrase_stats(index, ("bridge", "of", "sighs"))
        assert stats.collection_frequency == 3  # 1 in d1 + 2 in d3
        assert stats.document_frequency == 2

    def test_per_document(self, index):
        stats = collect_phrase_stats(index, ("bridge", "of", "sighs"))
        assert stats.occurrences_in("d3") == 2
        assert stats.occurrences_in("d2") == 0

    def test_collection_probability(self, index):
        stats = collect_phrase_stats(index, ("bridge", "of", "sighs"))
        assert stats.collection_probability(index) == pytest.approx(3 / index.total_tokens)

    def test_unseen_phrase_probability_floored(self, index):
        stats = collect_phrase_stats(index, ("missing", "phrase"))
        assert stats.collection_frequency == 0
        assert stats.collection_probability(index) == pytest.approx(
            0.5 / index.total_tokens
        )

    def test_cache_returns_same_object(self, index):
        first = collect_phrase_stats(index, ("grand", "canal"))
        second = collect_phrase_stats(index, ("grand", "canal"))
        assert first is second

    def test_cache_invalidated_by_new_documents(self, index):
        before = collect_phrase_stats(index, ("grand", "canal"))
        index.add_document("d5", "grand canal again")
        after = collect_phrase_stats(index, ("grand", "canal"))
        assert after is not before
        assert after.collection_frequency == before.collection_frequency + 1
