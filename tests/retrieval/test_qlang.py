"""Unit tests for the mini INDRI query language parser."""

import pytest

from repro.errors import QueryLanguageError
from repro.retrieval import (
    BandNode,
    CombineNode,
    PhraseNode,
    TermNode,
    Tokenizer,
    build_phrase_query,
    parse_query,
)


class TestParseBasics:
    def test_single_term(self):
        assert parse_query("gondola") == TermNode("gondola")

    def test_terms_become_implicit_combine(self):
        node = parse_query("gondola venice")
        assert node == CombineNode((TermNode("gondola"), TermNode("venice")))

    def test_quoted_phrase(self):
        node = parse_query('"bridge of sighs"')
        assert node == PhraseNode(("bridge", "of", "sighs"))

    def test_hash1_phrase(self):
        node = parse_query("#1(bridge of sighs)")
        assert node == PhraseNode(("bridge", "of", "sighs"))

    def test_combine_explicit(self):
        node = parse_query("#combine(gondola venice)")
        assert node == CombineNode((TermNode("gondola"), TermNode("venice")))

    def test_band(self):
        node = parse_query("#band(gondola venice)")
        assert node == BandNode((TermNode("gondola"), TermNode("venice")))

    def test_nesting(self):
        node = parse_query('#combine(gondola #1(grand canal) #band(venice regatta))')
        assert isinstance(node, CombineNode)
        assert node.children[0] == TermNode("gondola")
        assert node.children[1] == PhraseNode(("grand", "canal"))
        assert node.children[2] == BandNode((TermNode("venice"), TermNode("regatta")))

    def test_case_normalised(self):
        assert parse_query("GONDOLA") == TermNode("gondola")

    def test_hyphenated_word_becomes_phrase(self):
        assert parse_query("street-art") == PhraseNode(("street", "art"))

    def test_str_round_trip(self):
        text = "#combine(gondola #1(grand canal))"
        node = parse_query(text)
        assert parse_query(str(node)) == node


class TestParseErrors:
    def test_empty_query(self):
        with pytest.raises(QueryLanguageError, match="empty query"):
            parse_query("   ")

    def test_unknown_operator(self):
        with pytest.raises(QueryLanguageError, match="unknown operator"):
            parse_query("#frobnicate(x)")

    def test_unbalanced_close(self):
        with pytest.raises(QueryLanguageError, match="unbalanced"):
            parse_query("gondola)")

    def test_missing_close(self):
        with pytest.raises(QueryLanguageError, match="missing closing"):
            parse_query("#combine(gondola")

    def test_bare_parenthesis(self):
        with pytest.raises(QueryLanguageError, match="bare parentheses"):
            parse_query("(gondola)")

    def test_empty_combine(self):
        with pytest.raises(QueryLanguageError, match="at least one child"):
            parse_query("#combine()")

    def test_empty_hash1(self):
        with pytest.raises(QueryLanguageError, match="at least one term"):
            parse_query("#1()")

    def test_nested_operator_inside_hash1(self):
        with pytest.raises(QueryLanguageError, match="only plain terms"):
            parse_query("#1(#combine(a b))")

    def test_stopword_only_term_with_stopping_tokenizer(self):
        tok = Tokenizer(stopwords={"the"})
        with pytest.raises(QueryLanguageError, match="normalises to nothing"):
            parse_query("the", tok)


class TestBuildPhraseQuery:
    def test_builds_combine_of_phrases(self):
        node = build_phrase_query(["gondola", "grand canal"])
        assert node == CombineNode((TermNode("gondola"), PhraseNode(("grand", "canal"))))

    def test_empty_phrases_dropped(self):
        node = build_phrase_query(["gondola", "..."])
        assert node == CombineNode((TermNode("gondola"),))

    def test_all_empty_raises(self):
        with pytest.raises(QueryLanguageError, match="no usable phrases"):
            build_phrase_query(["...", "!!"])

    def test_stopwords_kept_in_phrases(self):
        tok = Tokenizer(stopwords={"of"})
        node = build_phrase_query(["bridge of sighs"], tok)
        assert node.children[0] == PhraseNode(("bridge", "of", "sighs"))
