"""Unit tests for smoothing models and the SearchEngine facade."""

import math

import pytest

from repro.errors import EmptyIndexError, QueryLanguageError
from repro.retrieval import (
    DirichletSmoothing,
    JelinekMercerSmoothing,
    SearchEngine,
)


class TestDirichletSmoothing:
    def test_formula(self):
        model = DirichletSmoothing(mu=100)
        got = model.log_prob(tf=3, doc_length=50, collection_prob=0.01)
        assert got == pytest.approx(math.log((3 + 100 * 0.01) / (50 + 100)))

    def test_more_occurrences_score_higher(self):
        model = DirichletSmoothing(mu=100)
        low = model.log_prob(1, 50, 0.01)
        high = model.log_prob(5, 50, 0.01)
        assert high > low

    def test_zero_tf_falls_back_to_background(self):
        model = DirichletSmoothing(mu=100)
        got = model.log_prob(0, 50, 0.01)
        assert got == pytest.approx(math.log((100 * 0.01) / 150))

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            DirichletSmoothing(mu=0)

    def test_empty_collection_degenerate(self):
        model = DirichletSmoothing()
        assert model.log_prob(0, 10, 0.0) == -math.inf
        assert model.log_prob(2, 10, 0.0) == 0.0

    def test_repr(self):
        assert "mu=2500" in repr(DirichletSmoothing())


class TestJelinekMercer:
    def test_formula(self):
        model = JelinekMercerSmoothing(lam=0.5)
        got = model.log_prob(tf=2, doc_length=10, collection_prob=0.01)
        assert got == pytest.approx(math.log(0.5 * 0.2 + 0.5 * 0.01))

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            JelinekMercerSmoothing(lam=0.0)
        with pytest.raises(ValueError):
            JelinekMercerSmoothing(lam=1.0)

    def test_zero_length_document(self):
        model = JelinekMercerSmoothing(lam=0.4)
        got = model.log_prob(0, 0, 0.01)
        assert got == pytest.approx(math.log(0.4 * 0.01))


@pytest.fixture
def engine():
    eng = SearchEngine(smoothing=DirichletSmoothing(mu=10))
    eng.add_documents(
        [
            ("venice1", "gondola on the grand canal of venice"),
            ("venice2", "venice carnival masks and gondola rides in venice"),
            ("belgium", "summer field in belgium with blue flowers"),
            ("paris", "bridges of paris at night"),
        ]
    )
    return eng


class TestSearchEngine:
    def test_empty_index_raises(self):
        with pytest.raises(EmptyIndexError):
            SearchEngine().search("anything")

    def test_invalid_top_k(self, engine):
        with pytest.raises(ValueError):
            engine.search("venice", top_k=0)

    def test_term_search_ranks_matching_docs(self, engine):
        results = engine.search("venice")
        ids = [r.doc_id for r in results]
        assert set(ids) == {"venice1", "venice2"}
        # venice2 mentions venice twice in a 9-token doc; it should lead.
        assert ids[0] == "venice2"

    def test_ranks_are_sequential(self, engine):
        results = engine.search("venice gondola")
        assert [r.rank for r in results] == list(range(1, len(results) + 1))

    def test_scores_descend(self, engine):
        results = engine.search("venice gondola carnival")
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_phrase_search_excludes_wrong_order(self, engine):
        results = engine.search('"grand canal"')
        assert [r.doc_id for r in results] == ["venice1"]

    def test_band_requires_all(self, engine):
        results = engine.search("#band(venice carnival)")
        assert [r.doc_id for r in results] == ["venice2"]

    def test_band_empty_intersection(self, engine):
        assert engine.search("#band(venice belgium)") == []

    def test_combine_unions_candidates(self, engine):
        results = engine.search("#combine(belgium paris)")
        assert {r.doc_id for r in results} == {"belgium", "paris"}

    def test_top_k_truncates(self, engine):
        results = engine.search("venice gondola carnival field", top_k=2)
        assert len(results) == 2

    def test_search_accepts_ast(self, engine):
        from repro.retrieval import TermNode

        results = engine.search(TermNode("belgium"))
        assert [r.doc_id for r in results] == ["belgium"]

    def test_search_phrases_shape(self, engine):
        results = engine.search_phrases(["gondola", "grand canal"])
        assert results[0].doc_id == "venice1"

    def test_deterministic_tie_break(self):
        eng = SearchEngine(smoothing=DirichletSmoothing(mu=10))
        eng.add_document("b", "same text here")
        eng.add_document("a", "same text here")
        results = eng.search("same text")
        assert [r.doc_id for r in results] == ["a", "b"]

    def test_unparsable_query(self, engine):
        with pytest.raises(QueryLanguageError):
            engine.search("#wat(x)")

    def test_num_documents(self, engine):
        assert engine.num_documents == 4

    def test_repr(self, engine):
        assert "SearchEngine(" in repr(engine)


class TestRankingSanity:
    """Relative-order properties the ground-truth pipeline relies on."""

    def test_doc_with_expansion_phrase_rises(self):
        eng = SearchEngine(smoothing=DirichletSmoothing(mu=5))
        eng.add_document("rel", "the gondola glided past the bridge of sighs")
        eng.add_document("irr", "a gondola in a museum far away from water")
        base = eng.search_phrases(["gondola"])
        assert {r.doc_id for r in base} == {"rel", "irr"}
        expanded = eng.search_phrases(["gondola", "bridge of sighs"])
        assert expanded[0].doc_id == "rel"

    def test_misleading_expansion_sinks_relevant_doc(self):
        eng = SearchEngine(smoothing=DirichletSmoothing(mu=5))
        eng.add_document("rel", "sheep graze on the quiet hillside meadow")
        eng.add_document("bad", "anthrax outbreak investigation and quarantine")
        only_good = eng.search_phrases(["sheep"])
        assert only_good[0].doc_id == "rel"
        expanded = eng.search_phrases(["sheep", "anthrax", "quarantine"])
        assert expanded[0].doc_id == "bad"


class TestTwoStageSmoothing:
    def test_reduces_to_dirichlet_at_lambda_zero(self):
        from repro.retrieval import TwoStageSmoothing

        two_stage = TwoStageSmoothing(mu=100, lam=0.0)
        dirichlet = DirichletSmoothing(mu=100)
        got = two_stage.log_prob(3, 50, 0.01)
        assert got == pytest.approx(dirichlet.log_prob(3, 50, 0.01))

    def test_interpolation_formula(self):
        from repro.retrieval import TwoStageSmoothing

        model = TwoStageSmoothing(mu=100, lam=0.5)
        dirichlet = (3 + 100 * 0.01) / (50 + 100)
        expected = math.log(0.5 * dirichlet + 0.5 * 0.01)
        assert model.log_prob(3, 50, 0.01) == pytest.approx(expected)

    def test_validation(self):
        from repro.retrieval import TwoStageSmoothing

        with pytest.raises(ValueError):
            TwoStageSmoothing(mu=0)
        with pytest.raises(ValueError):
            TwoStageSmoothing(lam=1.0)

    def test_monotone_in_tf(self):
        from repro.retrieval import TwoStageSmoothing

        model = TwoStageSmoothing(mu=50, lam=0.2)
        assert model.log_prob(4, 30, 0.02) > model.log_prob(2, 30, 0.02)

    def test_empty_collection_degenerate(self):
        from repro.retrieval import TwoStageSmoothing

        model = TwoStageSmoothing()
        assert model.log_prob(0, 10, 0.0) == -math.inf
        assert model.log_prob(1, 10, 0.0) == 0.0

    def test_usable_in_engine(self):
        from repro.retrieval import TwoStageSmoothing

        engine = SearchEngine(smoothing=TwoStageSmoothing(mu=20, lam=0.3))
        engine.add_document("d1", "gondola in venice")
        engine.add_document("d2", "bridge in paris")
        results = engine.search("gondola")
        assert results[0].doc_id == "d1"

    def test_repr(self):
        from repro.retrieval import TwoStageSmoothing

        assert "TwoStageSmoothing(" in repr(TwoStageSmoothing())
