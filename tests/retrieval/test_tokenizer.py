"""Unit tests for the tokenizer."""

import pytest

from repro.retrieval import DEFAULT_STOPWORDS, Tokenizer


class TestTokenize:
    def test_basic_split(self):
        assert Tokenizer().tokenize("Gondola in Venice") == ["gondola", "in", "venice"]

    def test_punctuation_dropped(self):
        assert Tokenizer().tokenize("bridge, of-sighs!") == ["bridge", "of", "sighs"]

    def test_numbers_kept(self):
        assert Tokenizer().tokenize("CLEF 2011 track") == ["clef", "2011", "track"]

    def test_apostrophes_kept_inside_words(self):
        assert Tokenizer().tokenize("venice's canals") == ["venice's", "canals"]

    def test_accents_folded(self):
        assert Tokenizer().tokenize("Papaver rhœas café") == ["papaver", "rh", "as", "cafe"]

    def test_accented_vowels(self):
        assert Tokenizer().tokenize("bleuet été champs") == ["bleuet", "ete", "champs"]

    def test_empty_text(self):
        assert Tokenizer().tokenize("") == []

    def test_whitespace_only(self):
        assert Tokenizer().tokenize("  \t\n ") == []

    def test_iter_tokens_matches_tokenize(self):
        tok = Tokenizer()
        text = "summer field in Belgium"
        assert list(tok.iter_tokens(text)) == tok.tokenize(text)

    def test_tokenize_many_matches_per_text(self):
        tok = Tokenizer()
        texts = ["Gondola in Venice", "", "bridge, of-sighs!"]
        assert tok.tokenize_many(texts) == [tok.tokenize(text) for text in texts]

    def test_tokenize_many_applies_filters(self):
        tok = Tokenizer(stopwords={"in"}, min_length=3)
        assert tok.tokenize_many(["a ride in Venice"]) == [["ride", "venice"]]

    def test_min_length_property(self):
        assert Tokenizer(min_length=2).min_length == 2


class TestStopwordsAndFilters:
    def test_stopwords_removed(self):
        tok = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert tok.tokenize("the bridge of sighs") == ["bridge", "sighs"]

    def test_no_stopwords_by_default(self):
        assert "of" in Tokenizer().tokenize("bridge of sighs")

    def test_min_length(self):
        tok = Tokenizer(min_length=3)
        assert tok.tokenize("a to the gondola") == ["the", "gondola"]

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_stopwords_property(self):
        tok = Tokenizer(stopwords={"the"})
        assert tok.stopwords == frozenset({"the"})


class TestTokenizePhrase:
    def test_keeps_stopwords(self):
        tok = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert tok.tokenize_phrase("Bridge of Sighs") == ("bridge", "of", "sighs")

    def test_returns_tuple(self):
        assert isinstance(Tokenizer().tokenize_phrase("grand canal"), tuple)

    def test_empty_phrase(self):
        assert Tokenizer().tokenize_phrase("...") == ()

    def test_repr(self):
        assert "Tokenizer(" in repr(Tokenizer())
