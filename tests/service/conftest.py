"""Shared fixtures for service-layer tests: one small benchmark + snapshot."""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.service import Snapshot
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def small_benchmark() -> Benchmark:
    return Benchmark.synthetic(
        SyntheticWikiConfig(seed=61, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=62, background_docs=40),
    )


@pytest.fixture(scope="module")
def snapshot(small_benchmark) -> Snapshot:
    return Snapshot.build(small_benchmark)


@pytest.fixture(scope="module")
def snapshot_dir(snapshot, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snapshot")
    snapshot.save(directory)
    return directory
