"""Snapshot round-trip and version-gate tests (single-shard and sharded)."""

import json

import pytest

from repro.errors import SnapshotError
from repro.linking.linker import EntityLinker
from repro.service import (
    MANIFEST_NAME,
    SNAPSHOT_VERSION,
    ShardedSnapshot,
    Snapshot,
)


class TestRoundTrip:
    def test_save_load_preserves_counts(self, snapshot, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        assert loaded.graph.num_articles == snapshot.graph.num_articles
        assert loaded.graph.num_edges == snapshot.graph.num_edges
        assert loaded.index.num_documents == snapshot.index.num_documents
        assert loaded.index.vocabulary_size == snapshot.index.vocabulary_size
        assert loaded.index.total_tokens == snapshot.index.total_tokens
        assert loaded.title_index == snapshot.title_index
        assert loaded.doc_names == snapshot.doc_names
        assert loaded.mu == snapshot.mu

    def test_identical_linking_after_reload(self, small_benchmark, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        fresh_linker = EntityLinker(small_benchmark.graph)
        reloaded_linker = loaded.make_linker()
        assert reloaded_linker.num_titles == fresh_linker.num_titles
        for topic in small_benchmark.topics:
            fresh = fresh_linker.link(topic.keywords)
            reloaded = reloaded_linker.link(topic.keywords)
            assert reloaded.article_ids == fresh.article_ids, topic.keywords
            assert reloaded.matches == fresh.matches

    def test_identical_ranking_after_reload(self, small_benchmark, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        fresh_engine = small_benchmark.build_engine()
        reloaded_engine = loaded.make_engine()
        for topic in small_benchmark.topics:
            fresh = fresh_engine.search(topic.keywords, top_k=10)
            reloaded = reloaded_engine.search(topic.keywords, top_k=10)
            assert [(r.doc_id, r.rank) for r in reloaded] == \
                   [(r.doc_id, r.rank) for r in fresh]
            for a, b in zip(reloaded, fresh):
                assert a.score == pytest.approx(b.score)


class TestVersionGate:
    def _corrupt_manifest(self, snapshot_dir, tmp_path, **overrides):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest.update(overrides)
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        return copy

    def test_wrong_version_raises_clear_error(self, snapshot_dir, tmp_path):
        bad = self._corrupt_manifest(snapshot_dir, tmp_path,
                                     version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError, match="version"):
            Snapshot.load(bad)
        try:
            Snapshot.load(bad)
        except SnapshotError as error:
            message = str(error)
            assert str(SNAPSHOT_VERSION + 1) in message  # found version
            assert str(SNAPSHOT_VERSION) in message      # supported version

    def test_foreign_format_rejected(self, snapshot_dir, tmp_path):
        bad = self._corrupt_manifest(snapshot_dir, tmp_path, format="not-a-snapshot")
        with pytest.raises(SnapshotError, match="format"):
            Snapshot.load(bad)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match=MANIFEST_NAME):
            Snapshot.load(tmp_path)

    def test_missing_artifact_file_rejected(self, snapshot_dir, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        (copy / "index.json.gz").unlink()
        with pytest.raises(SnapshotError, match="index.json.gz"):
            Snapshot.load(copy)

    @pytest.mark.parametrize("victim", ["wiki.jsonl.gz", "index.json.gz",
                                        "linker.json.gz", "documents.json.gz"])
    def test_truncated_artifact_rejected(self, snapshot_dir, tmp_path, victim):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        # Keep a valid gzip header but cut the stream short.
        (copy / victim).write_bytes((snapshot_dir / victim).read_bytes()[:60])
        with pytest.raises(SnapshotError, match="corrupt"):
            Snapshot.load(copy)

    def test_count_mismatch_rejected(self, snapshot_dir, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["counts"]["documents"] += 1
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="inconsistent"):
            Snapshot.load(copy)


@pytest.fixture(scope="module")
def sharded(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=4)


@pytest.fixture(scope="module")
def sharded_dir(sharded, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded_snapshot")
    sharded.save(directory)
    return directory


class TestShardedRoundTrip:
    def test_save_load_preserves_shards_and_counts(self, sharded, sharded_dir):
        loaded = ShardedSnapshot.load(sharded_dir)
        assert loaded.num_shards == sharded.num_shards
        assert loaded.num_documents == sharded.num_documents
        assert loaded.title_index == sharded.title_index
        assert loaded.doc_names == sharded.doc_names
        assert loaded.mu == sharded.mu
        for mine, original in zip(loaded.partitions, sharded.partitions):
            assert mine.core_articles == original.core_articles
            assert mine.core_categories == original.core_categories
            assert mine.graph.num_edges == original.graph.num_edges
        for mine, original in zip(loaded.segments, sharded.segments):
            assert mine.num_documents == original.num_documents
            assert mine.total_tokens == original.total_tokens
            assert mine.vocabulary_size == original.vocabulary_size

    def test_view_equals_original_graph(self, snapshot, sharded_dir):
        view = ShardedSnapshot.load(sharded_dir).view()
        graph = snapshot.graph
        assert view.num_articles == graph.num_articles
        assert view.num_edges == graph.num_edges
        for node_id in graph.node_ids():
            assert view.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)

    def test_segments_partition_the_collection(self, snapshot, sharded):
        seen: set[str] = set()
        for segment in sharded.segments:
            ids = set(segment.doc_ids())
            assert not (ids & seen)
            seen |= ids
        assert seen == set(snapshot.index.doc_ids())
        assert sum(s.total_tokens for s in sharded.segments) == \
            snapshot.index.total_tokens

    def test_v1_directory_loads_as_single_shard(self, snapshot, snapshot_dir):
        before = sorted(p.name for p in snapshot_dir.iterdir())
        loaded = ShardedSnapshot.load(snapshot_dir)
        assert loaded.num_shards == 1
        assert loaded.num_documents == snapshot.index.num_documents
        # Loading must not rewrite or migrate the directory in place.
        assert sorted(p.name for p in snapshot_dir.iterdir()) == before

    def test_mu_round_trips(self, small_benchmark, tmp_path):
        built = ShardedSnapshot.build(small_benchmark, num_shards=2, mu=123.0)
        built.save(tmp_path / "snap")
        assert ShardedSnapshot.load(tmp_path / "snap").mu == 123.0


class TestShardedGate:
    def _copy(self, sharded_dir, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(sharded_dir, copy)
        return copy

    def test_v1_loader_names_the_sharded_format(self, sharded_dir):
        with pytest.raises(SnapshotError, match="sharded"):
            Snapshot.load(sharded_dir)

    def test_checksum_mismatch_rejected(self, sharded_dir, tmp_path):
        copy = self._copy(sharded_dir, tmp_path)
        victim = copy / "shard-0001" / "index.bin"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF  # flip bits deep in the postings payload
        victim.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            ShardedSnapshot.load(copy)

    def test_stripped_checksum_entries_rejected(self, sharded_dir, tmp_path):
        """Deleting checksum entries must not silently disable the check."""
        copy = self._copy(sharded_dir, tmp_path)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["shard_artifacts"][0]["checksums"] = {}
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="no checksum"):
            ShardedSnapshot.load(copy)

    def test_missing_shard_dir_rejected(self, sharded_dir, tmp_path):
        import shutil

        copy = self._copy(sharded_dir, tmp_path)
        shutil.rmtree(copy / "shard-0002")
        with pytest.raises(SnapshotError, match="missing"):
            ShardedSnapshot.load(copy)

    def test_shard_count_mismatch_rejected(self, sharded_dir, tmp_path):
        copy = self._copy(sharded_dir, tmp_path)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["shards"] = 5
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="shard"):
            ShardedSnapshot.load(copy)

    def test_unknown_version_rejected(self, sharded_dir, tmp_path):
        copy = self._copy(sharded_dir, tmp_path)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            ShardedSnapshot.load(copy)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match=MANIFEST_NAME):
            ShardedSnapshot.load(tmp_path)

    def test_invalid_shard_count_for_build(self, snapshot):
        with pytest.raises(SnapshotError):
            ShardedSnapshot.from_snapshot(snapshot, num_shards=0)
