"""Snapshot round-trip and version-gate tests."""

import json

import pytest

from repro.errors import SnapshotError
from repro.linking.linker import EntityLinker
from repro.service import MANIFEST_NAME, SNAPSHOT_VERSION, Snapshot


class TestRoundTrip:
    def test_save_load_preserves_counts(self, snapshot, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        assert loaded.graph.num_articles == snapshot.graph.num_articles
        assert loaded.graph.num_edges == snapshot.graph.num_edges
        assert loaded.index.num_documents == snapshot.index.num_documents
        assert loaded.index.vocabulary_size == snapshot.index.vocabulary_size
        assert loaded.index.total_tokens == snapshot.index.total_tokens
        assert loaded.title_index == snapshot.title_index
        assert loaded.doc_names == snapshot.doc_names
        assert loaded.mu == snapshot.mu

    def test_identical_linking_after_reload(self, small_benchmark, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        fresh_linker = EntityLinker(small_benchmark.graph)
        reloaded_linker = loaded.make_linker()
        assert reloaded_linker.num_titles == fresh_linker.num_titles
        for topic in small_benchmark.topics:
            fresh = fresh_linker.link(topic.keywords)
            reloaded = reloaded_linker.link(topic.keywords)
            assert reloaded.article_ids == fresh.article_ids, topic.keywords
            assert reloaded.matches == fresh.matches

    def test_identical_ranking_after_reload(self, small_benchmark, snapshot_dir):
        loaded = Snapshot.load(snapshot_dir)
        fresh_engine = small_benchmark.build_engine()
        reloaded_engine = loaded.make_engine()
        for topic in small_benchmark.topics:
            fresh = fresh_engine.search(topic.keywords, top_k=10)
            reloaded = reloaded_engine.search(topic.keywords, top_k=10)
            assert [(r.doc_id, r.rank) for r in reloaded] == \
                   [(r.doc_id, r.rank) for r in fresh]
            for a, b in zip(reloaded, fresh):
                assert a.score == pytest.approx(b.score)


class TestVersionGate:
    def _corrupt_manifest(self, snapshot_dir, tmp_path, **overrides):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest.update(overrides)
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        return copy

    def test_wrong_version_raises_clear_error(self, snapshot_dir, tmp_path):
        bad = self._corrupt_manifest(snapshot_dir, tmp_path,
                                     version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError, match="version"):
            Snapshot.load(bad)
        try:
            Snapshot.load(bad)
        except SnapshotError as error:
            message = str(error)
            assert str(SNAPSHOT_VERSION + 1) in message  # found version
            assert str(SNAPSHOT_VERSION) in message      # supported version

    def test_foreign_format_rejected(self, snapshot_dir, tmp_path):
        bad = self._corrupt_manifest(snapshot_dir, tmp_path, format="not-a-snapshot")
        with pytest.raises(SnapshotError, match="format"):
            Snapshot.load(bad)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match=MANIFEST_NAME):
            Snapshot.load(tmp_path)

    def test_missing_artifact_file_rejected(self, snapshot_dir, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        (copy / "index.json.gz").unlink()
        with pytest.raises(SnapshotError, match="index.json.gz"):
            Snapshot.load(copy)

    @pytest.mark.parametrize("victim", ["wiki.jsonl.gz", "index.json.gz",
                                        "linker.json.gz", "documents.json.gz"])
    def test_truncated_artifact_rejected(self, snapshot_dir, tmp_path, victim):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        # Keep a valid gzip header but cut the stream short.
        (copy / victim).write_bytes((snapshot_dir / victim).read_bytes()[:60])
        with pytest.raises(SnapshotError, match="corrupt"):
            Snapshot.load(copy)

    def test_count_mismatch_rejected(self, snapshot_dir, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(snapshot_dir, copy)
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["counts"]["documents"] += 1
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="inconsistent"):
            Snapshot.load(copy)
