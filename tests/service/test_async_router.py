"""AsyncShardRouter: bit-identical to the sync router, plus coalescing."""

import asyncio

import pytest

from repro.service import AsyncShardRouter, ShardRouter, ShardedSnapshot

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


@pytest.fixture(scope="module")
def sharded_snapshot(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=4)


@pytest.fixture()
def sync_router(sharded_snapshot) -> ShardRouter:
    return ShardRouter(sharded_snapshot)


def run(coro):
    return asyncio.run(coro)


class TestEquivalence:
    def test_expand_query_identical_to_sync_router(
        self, small_benchmark, sharded_snapshot, sync_router
    ):
        """Same doc ids AND scores as the blocking scatter-gather."""
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))

        async def all_queries():
            return [
                await async_router.expand_query(topic.keywords, top_k=10)
                for topic in small_benchmark.topics
            ]

        responses = run(all_queries())
        async_router.close()
        for topic, mine in zip(small_benchmark.topics, responses):
            reference = sync_router.expand_query(topic.keywords, top_k=10)
            assert mine.query == topic.keywords
            assert mine.link.article_ids == reference.link.article_ids
            assert mine.expansion.article_ids == reference.expansion.article_ids
            assert [(r.doc_id, r.score) for r in mine.results] == \
                   [(r.doc_id, r.score) for r in reference.results]

    def test_batch_expand_identical_to_sync_batch(
        self, small_benchmark, sharded_snapshot, sync_router
    ):
        queries = [topic.keywords for topic in small_benchmark.topics]
        queries.append(queries[0])  # raw duplicate, like real batches
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))
        batch = run(async_router.batch_expand(queries, top_k=10))
        async_router.close()
        reference = sync_router.batch_expand(queries, top_k=10)
        assert len(batch) == len(reference) == len(queries)
        for query, mine, ref in zip(queries, batch, reference):
            assert mine.query == ref.query
            assert mine.expansion_cached == ref.expansion_cached
            assert [(r.doc_id, r.score) for r in mine.results] == \
                   [(r.doc_id, r.score) for r in ref.results], query

    def test_batch_marks_own_prefill_as_cold_then_repeats_as_cached(
        self, small_benchmark, sharded_snapshot
    ):
        queries = [topic.keywords for topic in small_benchmark.topics]
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))
        first = run(async_router.batch_expand(queries))
        assert not any(r.expansion_cached for r in first if r.linked)
        again = run(async_router.batch_expand(queries))
        assert all(r.expansion_cached for r in again if r.linked)
        async_router.close()

    def test_empty_batch_and_empty_query(self, sharded_snapshot):
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))
        assert run(async_router.batch_expand([])) == []
        response = run(async_router.expand_query("!!! ???"))
        assert response.normalized_query == ""
        assert response.results == ()
        async_router.close()


class TestCoalescing:
    def test_identical_concurrent_queries_share_one_computation(
        self, small_benchmark, sharded_snapshot, monkeypatch
    ):
        """N concurrent copies of one cold query pay one expansion pass
        and every awaiter gets the same answer."""
        # Asserts on the in-process workers' expansion-cache counters,
        # which socket-mode (out-of-process) workers would not touch.
        monkeypatch.delenv("REPRO_SHARD_ADAPTER", raising=False)
        keywords = small_benchmark.topics[0].keywords
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))

        async def fan_out():
            return await asyncio.gather(*(
                async_router.expand_query(keywords) for _ in range(5)
            ))

        responses = run(fan_out())
        assert async_router.coalesced_requests == 4
        first = responses[0]
        for other in responses[1:]:
            assert [(r.doc_id, r.score) for r in other.results] == \
                   [(r.doc_id, r.score) for r in first.results]
        # One computation => the worker saw exactly one cold expansion.
        stats = async_router.stats()
        assert stats.queries == 5  # offered load is still 5
        assert stats.expansion_cache.misses == 1
        async_router.close()

    def test_coalesced_requests_keep_their_own_raw_query_text(
        self, small_benchmark, sharded_snapshot
    ):
        """Case variants normalise identically, coalesce, and still echo
        their own raw text back."""
        keywords = small_benchmark.topics[0].keywords
        variants = [keywords, keywords.upper(), f"  {keywords}  "]
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))

        async def fan_out():
            return await asyncio.gather(*(
                async_router.expand_query(text) for text in variants
            ))

        responses = run(fan_out())
        assert [r.query for r in responses] == variants
        assert len({r.normalized_query for r in responses}) == 1
        assert async_router.coalesced_requests == 2
        async_router.close()

    def test_different_top_k_do_not_coalesce(
        self, small_benchmark, sharded_snapshot
    ):
        keywords = small_benchmark.topics[0].keywords
        async_router = AsyncShardRouter(ShardRouter(sharded_snapshot))

        async def fan_out():
            return await asyncio.gather(
                async_router.expand_query(keywords, top_k=3),
                async_router.expand_query(keywords, top_k=5),
            )

        three, five = run(fan_out())
        assert async_router.coalesced_requests == 0
        assert len(three.results) <= 3 < len(five.results) <= 5
        async_router.close()


class TestAccounting:
    def test_requests_total_and_errors_count_failures(
        self, small_benchmark, sharded_snapshot, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SHARD_ADAPTER", raising=False)
        router = ShardRouter(sharded_snapshot)
        async_router = AsyncShardRouter(router)

        def boom(normalized):
            raise RuntimeError("linker down")

        router.link_text = boom
        with pytest.raises(RuntimeError):
            run(async_router.expand_query(small_benchmark.topics[0].keywords))
        stats = async_router.stats()
        assert stats.requests_total == 1
        assert stats.errors == 1
        assert stats.queries == 0
        async_router.close()
