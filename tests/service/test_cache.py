"""Unit tests of the LRU cache layer: eviction order, counters, identity."""

import pytest

from repro.errors import ServiceError
from repro.service import ExpansionService, LRUCache


class TestEviction:
    def test_oldest_entry_evicted_first(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")     # "b" is now oldest
        cache.put("c", 3)  # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency_and_overwrites(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)   # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_keys_ordered_least_to_most_recent(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert list(cache.keys()) == ["b", "c", "a"]

    def test_size_one_always_keeps_latest(self):
        cache = LRUCache(1)
        for n in range(5):
            cache.put(n, n)
        assert list(cache.keys()) == [4]
        assert cache.stats.evictions == 4

    def test_invalid_size_rejected(self):
        with pytest.raises(ServiceError):
            LRUCache(0)


class TestCounters:
    def test_hit_and_miss_counts(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        stats = cache.stats
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_peek_does_not_count_or_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("nope") is None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 0)
        cache.put("c", 3)  # "a" still oldest: peek must not have refreshed it
        assert "a" not in cache

    def test_clear_keeps_lifetime_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(2).stats.hit_rate == 0.0


class TestCachedExpansionIdentity:
    def test_cached_result_identical_to_cold(self, small_benchmark):
        service = ExpansionService.from_benchmark(small_benchmark)
        keywords = small_benchmark.topics[0].keywords

        cold = service.expand_query(keywords)
        warm = service.expand_query(keywords)

        assert not cold.expansion_cached
        assert warm.expansion_cached and warm.link_cached
        # The cached ExpansionResult is the very object the cold pass built,
        # and the ranked lists derived from it agree exactly.
        assert warm.expansion is cold.expansion
        assert warm.link is cold.link
        assert warm.results == cold.results

        stats = service.stats()
        assert stats.expansion_cache.hits == 1
        assert stats.expansion_cache.misses == 1
        assert stats.link_cache.hits == 1
        assert stats.link_cache.misses == 1

    def test_distinct_phrasings_share_one_expansion(self, small_benchmark):
        service = ExpansionService.from_benchmark(small_benchmark)
        keywords = small_benchmark.topics[0].keywords

        first = service.expand_query(keywords)
        shouted = service.expand_query(keywords.upper() + "!")

        assert shouted.normalized_query == first.normalized_query
        assert shouted.expansion is first.expansion
