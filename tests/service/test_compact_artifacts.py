"""Snapshot v3 (compact blobs + prefill): round trips and failure modes."""

import json

import pytest

from repro.retrieval import CompactIndex
from repro.errors import SnapshotError
from repro.service import (
    COMPACT_SNAPSHOT_VERSION,
    MANIFEST_NAME,
    ExpansionService,
    ShardRouter,
    ShardedSnapshot,
)


@pytest.fixture(scope="module")
def sharded(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=3)


@pytest.fixture(scope="module")
def v3_dir(sharded, tmp_path_factory):
    directory = tmp_path_factory.mktemp("v3_snapshot")
    sharded.save(directory)
    return directory


def _sha256_of(path):
    import hashlib

    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestV3RoundTrip:
    def test_layout_and_manifest_version(self, v3_dir):
        manifest = json.loads((v3_dir / MANIFEST_NAME).read_text())
        assert manifest["version"] == COMPACT_SNAPSHOT_VERSION
        assert (v3_dir / "graph.bin").exists()
        assert (v3_dir / "shard-0000" / "index.bin").exists()
        assert not (v3_dir / "shard-0000" / "index.json.gz").exists()
        assert "graph.bin" in manifest["shared_checksums"]
        assert "index.bin" in manifest["shard_artifacts"][0]["checksums"]

    def test_load_is_frozen_and_equivalent(self, sharded, v3_dir):
        loaded = ShardedSnapshot.load(v3_dir)
        assert loaded.compact_graph is not None
        assert all(isinstance(s, CompactIndex) for s in loaded.segments)
        assert loaded.num_documents == sharded.num_documents
        assert loaded.title_index == sharded.title_index
        for mine, original in zip(loaded.segments, sharded.segments):
            assert mine.num_documents == original.num_documents
            assert mine.total_tokens == original.total_tokens
            assert list(mine.terms()) == list(original.terms())
        graph = sharded.view()
        for node_id in list(graph.node_ids())[:50]:
            assert loaded.compact_graph.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)

    def test_served_answers_match_in_memory_snapshot(
        self, small_benchmark, sharded, v3_dir
    ):
        mine = ShardRouter(ShardedSnapshot.load(v3_dir))
        reference = ShardRouter(sharded)
        for topic in small_benchmark.topics:
            a = mine.expand_query(topic.keywords, top_k=10)
            b = reference.expand_query(topic.keywords, top_k=10)
            assert a.expansion.article_ids == b.expansion.article_ids
            assert [(r.doc_id, r.score) for r in a.results] == \
                   [(r.doc_id, r.score) for r in b.results]

    def test_reopened_snapshot_serves_identically(self, small_benchmark, v3_dir):
        """Two independent loads (a restart stand-in) answer the same."""
        first = ShardRouter(ShardedSnapshot.load(v3_dir))
        again = ShardRouter(ShardedSnapshot.load(v3_dir))
        keywords = small_benchmark.topics[0].keywords
        a = first.expand_query(keywords)
        b = again.expand_query(keywords)
        assert [(r.doc_id, r.score) for r in a.results] == \
               [(r.doc_id, r.score) for r in b.results]


class TestFreezeOnLoad:
    def test_v2_directory_loads_frozen_and_equivalent(
        self, small_benchmark, sharded, tmp_path
    ):
        """A legacy v2 directory freezes on load: compact structures,
        identical answers."""
        v2_dir = tmp_path / "v2"
        sharded.save(v2_dir, version=2)
        manifest = json.loads((v2_dir / MANIFEST_NAME).read_text())
        assert manifest["version"] == 2
        assert (v2_dir / "shard-0000" / "index.json.gz").exists()
        assert not (v2_dir / "graph.bin").exists()

        loaded = ShardedSnapshot.load(v2_dir)
        assert loaded.compact_graph is not None
        assert all(isinstance(s, CompactIndex) for s in loaded.segments)
        mine = ShardRouter(loaded)
        reference = ShardRouter(sharded)
        for topic in small_benchmark.topics:
            a = mine.expand_query(topic.keywords, top_k=10)
            b = reference.expand_query(topic.keywords, top_k=10)
            assert a.expansion.article_ids == b.expansion.article_ids
            assert [(r.doc_id, r.score) for r in a.results] == \
                   [(r.doc_id, r.score) for r in b.results]

    def test_v1_directory_loads_frozen(self, snapshot_dir):
        loaded = ShardedSnapshot.load(snapshot_dir)
        assert loaded.num_shards == 1
        assert loaded.compact_graph is not None
        assert isinstance(loaded.segments[0], CompactIndex)


class TestFailureModes:
    def _copy(self, source, tmp_path):
        import shutil

        copy = tmp_path / "snap"
        shutil.copytree(source, copy)
        return copy

    def test_truncated_index_blob_rejected(self, v3_dir, tmp_path):
        """Truncation caught even when the manifest checksum 'matches'
        the truncated file (a tampered manifest cannot sneak a torn blob
        past the parser)."""
        copy = self._copy(v3_dir, tmp_path)
        victim = copy / "shard-0001" / "index.bin"
        victim.write_bytes(victim.read_bytes()[:40])
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["shard_artifacts"][1]["checksums"]["index.bin"] = \
            _sha256_of(victim)
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="corrupt"):
            ShardedSnapshot.load(copy)

    def test_truncated_graph_blob_rejected(self, v3_dir, tmp_path):
        copy = self._copy(v3_dir, tmp_path)
        victim = copy / "graph.bin"
        victim.write_bytes(victim.read_bytes()[:64])
        manifest = json.loads((copy / MANIFEST_NAME).read_text())
        manifest["shared_checksums"]["graph.bin"] = _sha256_of(victim)
        (copy / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="corrupt"):
            ShardedSnapshot.load(copy)

    def test_blob_checksum_mismatch_rejected(self, v3_dir, tmp_path):
        copy = self._copy(v3_dir, tmp_path)
        victim = copy / "graph.bin"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            ShardedSnapshot.load(copy)

    def test_missing_blob_rejected(self, v3_dir, tmp_path):
        copy = self._copy(v3_dir, tmp_path)
        (copy / "shard-0002" / "index.bin").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            ShardedSnapshot.load(copy)

    def test_unknown_write_version_rejected(self, sharded, tmp_path):
        with pytest.raises(SnapshotError, match="version"):
            sharded.save(tmp_path / "snap", version=4)

    def test_prefill_requires_v3(self, sharded, small_benchmark, tmp_path):
        prefilled = sharded.with_prefill(
            [t.keywords for t in small_benchmark.topics]
        )
        with pytest.raises(SnapshotError, match="version-3"):
            prefilled.save(tmp_path / "snap", version=2)


class TestPrefill:
    @pytest.fixture(scope="class")
    def prefilled(self, sharded, small_benchmark) -> ShardedSnapshot:
        return sharded.with_prefill(
            [topic.keywords for topic in small_benchmark.topics]
        )

    def test_prefill_counts_and_owner_locality(self, prefilled):
        assert prefilled.num_prefilled > 0
        view = prefilled.view()
        for shard, entries in enumerate(prefilled.prefills):
            for seeds, result in entries:
                assert result.seed_articles == seeds
                # Every entry sits on the shard the router would pick.
                assert view.owner_shard(min(seeds)) == shard

    def test_prefill_round_trips_through_disk(self, prefilled, tmp_path):
        directory = tmp_path / "snap"
        prefilled.save(directory)
        assert (directory / "shard-0000" / "prefill.json.gz").exists()
        loaded = ShardedSnapshot.load(directory)
        assert loaded.num_prefilled == prefilled.num_prefilled
        for mine, original in zip(loaded.prefills, prefilled.prefills):
            assert len(mine) == len(original)
            for (my_seeds, my_result), (seeds, result) in zip(mine, original):
                assert my_seeds == seeds
                assert my_result.article_ids == result.article_ids
                assert my_result.titles == result.titles
                assert my_result.cycles == result.cycles

    def test_cold_router_serves_prefilled_topics_from_cache(
        self, prefilled, sharded, small_benchmark, tmp_path
    ):
        directory = tmp_path / "snap"
        prefilled.save(directory)
        router = ShardRouter(ShardedSnapshot.load(directory))
        # A non-prefilled router over the same data computes everything
        # cold; the prefilled answers must match it exactly.
        reference = ShardRouter(sharded)
        for topic in small_benchmark.topics:
            response = router.expand_query(topic.keywords)
            if response.linked:
                assert response.expansion_cached, topic.keywords
            cold = reference.expand_query(topic.keywords)
            assert [(r.doc_id, r.score) for r in response.results] == \
                   [(r.doc_id, r.score) for r in cold.results]

    def test_prefill_records_the_expander_fingerprint_and_round_trips_it(
        self, prefilled, tmp_path
    ):
        from repro.core.expansion import (
            NeighborhoodCycleExpander,
            expander_fingerprint,
        )

        expected = expander_fingerprint(NeighborhoodCycleExpander())
        assert prefilled.prefill_expander == expected
        assert "radius=" in expected  # configuration, not just the class
        directory = tmp_path / "snap"
        prefilled.save(directory)
        assert ShardedSnapshot.load(directory).prefill_expander == expected

    def test_router_with_different_expander_skips_warmup(
        self, prefilled, small_benchmark
    ):
        """A custom expander must never serve another strategy's cached
        prefill results; those queries simply run cold."""
        from repro.core.expansion import NeighborhoodCycleExpander

        class CustomExpander(NeighborhoodCycleExpander):
            pass

        router = ShardRouter(prefilled, expander=CustomExpander())
        response = router.expand_query(small_benchmark.topics[0].keywords)
        assert response.linked
        assert not response.expansion_cached

    def test_router_with_reconfigured_expander_skips_warmup(
        self, prefilled, small_benchmark
    ):
        """Same class, different parameters: the fingerprint guard must
        still refuse the warm-up (a radius-3 router serving radius-2
        prefill results would be silently wrong)."""
        from repro.core.expansion import NeighborhoodCycleExpander

        router = ShardRouter(
            prefilled, expander=NeighborhoodCycleExpander(radius=3)
        )
        response = router.expand_query(small_benchmark.topics[0].keywords)
        assert response.linked
        assert not response.expansion_cached

    def test_router_with_equal_default_expander_warms(
        self, prefilled, small_benchmark
    ):
        from repro.core.expansion import NeighborhoodCycleExpander

        router = ShardRouter(prefilled, expander=NeighborhoodCycleExpander())
        response = router.expand_query(small_benchmark.topics[0].keywords)
        assert response.linked
        assert response.expansion_cached

    def test_single_shard_service_warms_from_prefill(
        self, snapshot, small_benchmark
    ):
        single = ShardedSnapshot.from_snapshot(snapshot, num_shards=1) \
            .with_prefill([t.keywords for t in small_benchmark.topics])
        service = ExpansionService(
            single.compact_graph,
            single.make_segment_engine(0),
            single.make_linker(single.partitions[0].graph),
            doc_names=single.doc_names,
        )
        service.warm_expansions(single.prefills[0])
        response = service.expand_query(small_benchmark.topics[0].keywords)
        assert response.linked
        assert response.expansion_cached
