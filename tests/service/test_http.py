"""HTTP front end: endpoints, wire fidelity, and failure modes."""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.service import (
    AsyncShardRouter,
    HttpFrontEnd,
    ShardRouter,
    ShardedSnapshot,
)


class ServerHandle:
    """An HttpFrontEnd running on a private event-loop thread."""

    def __init__(self, front: HttpFrontEnd):
        self.front = front
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        server = asyncio.run_coroutine_threadsafe(
            front.start("127.0.0.1", 0), self.loop
        ).result(timeout=30)
        self.port = server.sockets[0].getsockname()[1]

    def request(self, method: str, path: str, payload=None, raw_body=None):
        """One request; returns (status, parsed JSON body)."""
        body = raw_body if raw_body is not None \
            else (json.dumps(payload).encode() if payload is not None else None)
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request(method, path, body,
                         {"Content-Type": "application/json"} if body else {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.front.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.front.service.close()


@pytest.fixture(scope="module")
def sharded_snapshot(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=2)


@pytest.fixture(scope="module")
def server(sharded_snapshot):
    handle = ServerHandle(HttpFrontEnd(
        AsyncShardRouter(ShardRouter(sharded_snapshot)),
        snapshot_info="test layout line",
        max_body_bytes=64 * 1024,
    ))
    yield handle
    handle.close()


@pytest.fixture()
def sync_reference(sharded_snapshot) -> ShardRouter:
    return ShardRouter(sharded_snapshot)


class TestEndpoints:
    def test_healthz_reports_liveness_and_layout(self, server):
        status, payload = server.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["shards"] == 2
        assert payload["snapshot"] == "test layout line"
        # The ambiguous "requests_total" key was split by plane.
        assert "requests_total" not in payload
        assert payload["http_requests_total"] >= 1
        assert payload["router_requests_total"] >= 0
        assert payload["http_errors"] >= 0
        assert payload["router_errors"] >= 0
        assert isinstance(payload["errors_by_status"], dict)
        assert payload["uptime_s"] >= 0
        assert set(payload["hit_rates"]) == {"link", "expansion"}
        assert len(payload["per_shard"]) == 2
        for shard_id, shard in enumerate(payload["per_shard"]):
            assert shard["shard"] == shard_id
            assert shard["inflight"] >= 0
            assert 0.0 <= shard["expansion_hit_rate"] <= 1.0

    def test_expand_round_trips_bit_identical(
        self, small_benchmark, server, sync_reference
    ):
        """The JSON payload carries the exact in-process answer: same doc
        ids, same float scores after the round trip."""
        for topic in small_benchmark.topics[:3]:
            status, payload = server.request(
                "POST", "/expand", {"query": topic.keywords}
            )
            reference = sync_reference.expand_query(topic.keywords)
            assert status == 200
            assert payload["query"] == topic.keywords
            assert payload["linked"] == reference.linked
            assert payload["link"]["article_ids"] == \
                sorted(reference.link.article_ids)
            assert payload["expansion"]["article_ids"] == \
                sorted(reference.expansion.article_ids)
            assert payload["expansion"]["titles"] == \
                list(reference.expansion.titles)
            assert [(r["doc_id"], r["score"]) for r in payload["results"]] == \
                   [(r.doc_id, r.score) for r in reference.results]

    def test_expand_repeat_reports_cached(self, small_benchmark, server):
        query = {"query": small_benchmark.topics[0].keywords}
        server.request("POST", "/expand", query)
        _, payload = server.request("POST", "/expand", query)
        assert payload["expansion_cached"] is True

    def test_search_returns_slim_payload(
        self, small_benchmark, server, sync_reference
    ):
        keywords = small_benchmark.topics[1].keywords
        status, payload = server.request(
            "POST", "/search", {"query": keywords, "top_k": 5}
        )
        reference = sync_reference.expand_query(keywords, top_k=5)
        assert status == 200
        assert set(payload) == {"query", "normalized_query", "linked", "results"}
        assert [(r["doc_id"], r["score"]) for r in payload["results"]] == \
               [(r.doc_id, r.score) for r in reference.results]
        assert all(r["name"] for r in payload["results"])

    def test_batch_expand_preserves_order_and_dedupes(
        self, small_benchmark, server
    ):
        queries = [
            small_benchmark.topics[0].keywords,
            small_benchmark.topics[1].keywords,
            small_benchmark.topics[0].keywords,  # duplicate
        ]
        status, payload = server.request(
            "POST", "/batch_expand", {"queries": queries}
        )
        assert status == 200
        responses = payload["responses"]
        assert [r["query"] for r in responses] == queries
        assert responses[0]["results"] == responses[2]["results"]

    def test_stats_reports_router_and_http_counters(self, server):
        status, payload = server.request("GET", "/stats")
        assert status == 200
        for key in ("shards", "requests_total", "errors", "queries",
                    "link_cache", "expansion_cache", "per_shard", "http"):
            assert key in payload, key
        http_stats = payload["http"]
        assert http_stats["requests_total"] >= 1
        assert http_stats["by_endpoint"].get("/stats", 0) >= 1
        assert http_stats["coalesced_requests"] >= 0


class TestFailureModes:
    def test_malformed_json_body_is_400(self, server):
        status, payload = server.request(
            "POST", "/expand", raw_body=b"{not json!"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "JSON" in payload["error"]["message"]

    def test_non_object_body_is_400(self, server):
        status, payload = server.request("POST", "/expand", raw_body=b'["list"]')
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_missing_and_invalid_fields_are_400(self, server):
        for body in ({}, {"query": 7}, {"query": "   "},
                     {"query": "x", "top_k": 0}, {"query": "x", "top_k": True}):
            status, payload = server.request("POST", "/expand", body)
            assert status == 400, body
            assert payload["error"]["code"] in ("bad_request", "invalid_request")
        status, payload = server.request("POST", "/batch_expand", {"queries": []})
        assert status == 400
        status, payload = server.request(
            "POST", "/batch_expand", {"queries": ["ok", 5]}
        )
        assert status == 400

    def test_unknown_endpoint_is_404(self, server):
        status, payload = server.request("GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, payload = server.request("GET", "/expand")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, _ = server.request("POST", "/healthz", {"x": 1})
        assert status == 405

    def test_too_many_headers_is_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            head = "GET /healthz HTTP/1.1\r\n" + \
                "".join(f"X-H{i}: v\r\n" for i in range(200)) + "\r\n"
            sock.sendall(head.encode("latin-1"))
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_stop_lets_in_flight_requests_finish(
        self, sharded_snapshot, monkeypatch
    ):
        """stop() must deliver in-flight responses, then close."""
        # Patches the in-process workers, so force the executor adapter
        # even when the suite runs in its socket-adapter configuration.
        monkeypatch.delenv("REPRO_SHARD_ADAPTER", raising=False)
        router = ShardRouter(sharded_snapshot)
        release = threading.Event()
        arrived = threading.Event()
        real_expand = router.workers[0].expand_seeds.__func__

        def slow_expand(worker_self, seeds):
            arrived.set()
            release.wait(timeout=30)
            return real_expand(worker_self, seeds)

        for worker in router.workers:
            worker.expand_seeds = slow_expand.__get__(worker)

        handle = ServerHandle(HttpFrontEnd(AsyncShardRouter(router)))
        result: dict = {}

        def fire():
            status, payload = handle.request(
                "POST", "/expand", {"query": "completely unknowable words"}
            )
            result["status"] = status
            result["payload"] = payload

        thread = threading.Thread(target=fire)
        thread.start()
        try:
            assert arrived.wait(timeout=30)  # request parked on a shard thread
            stop_future = asyncio.run_coroutine_threadsafe(
                handle.front.stop(), handle.loop
            )
            time.sleep(0.1)  # stop() is now draining, request still held
            assert not stop_future.done()
            release.set()
            stop_future.result(timeout=30)
            thread.join(timeout=30)
            assert result["status"] == 200
            assert result["payload"]["query"] == "completely unknowable words"
        finally:
            release.set()
            thread.join(timeout=30)
            handle.loop.call_soon_threadsafe(handle.loop.stop)
            handle.thread.join(timeout=30)
            handle.front.service.close()

    def test_oversized_request_is_413(self, server):
        huge = {"query": "q" * (128 * 1024)}  # over the 64 KiB fixture cap
        status, payload = server.request("POST", "/expand", huge)
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_internal_error_is_500_and_counted(
        self, sharded_snapshot, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SHARD_ADAPTER", raising=False)
        router = ShardRouter(sharded_snapshot)

        def boom(normalized):
            raise RuntimeError("shard on fire")

        router.link_text = boom
        handle = ServerHandle(HttpFrontEnd(AsyncShardRouter(router)))
        try:
            status, payload = handle.request("POST", "/expand", {"query": "x"})
            assert status == 500
            assert payload["error"]["code"] == "internal_error"
            assert "shard on fire" in payload["error"]["message"]
            _, stats = handle.request("GET", "/stats")
            assert stats["errors"] == 1          # router-level error counter
            assert stats["http"]["errors"] >= 1  # http-level error counter
        finally:
            handle.close()


class TestCoalescing:
    def test_concurrent_identical_requests_coalesce_to_identical_payloads(
        self, sharded_snapshot, small_benchmark, monkeypatch
    ):
        """A thundering herd on one cold query is answered by ONE
        computation; every client receives byte-identical JSON."""
        # Relies on patching the in-process workers to park requests.
        monkeypatch.delenv("REPRO_SHARD_ADAPTER", raising=False)
        router = ShardRouter(sharded_snapshot)
        release = threading.Event()
        real_expand = router.workers[0].expand_seeds.__func__
        arrived = threading.Event()

        def slow_expand(worker_self, seeds):
            arrived.set()
            release.wait(timeout=30)
            return real_expand(worker_self, seeds)

        for worker in router.workers:
            worker.expand_seeds = slow_expand.__get__(worker)

        handle = ServerHandle(HttpFrontEnd(AsyncShardRouter(router)))
        keywords = small_benchmark.topics[2].keywords
        payloads: list[tuple[int, bytes]] = []
        lock = threading.Lock()

        def fire():
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=60
            )
            try:
                conn.request(
                    "POST", "/expand",
                    json.dumps({"query": keywords}).encode(),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                with lock:
                    payloads.append((response.status, response.read()))
            finally:
                conn.close()

        threads = [threading.Thread(target=fire) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            # Hold the expansion until every request is parked on the
            # coalescing table, so overlap is deterministic, not timing.
            assert arrived.wait(timeout=30)
            deadline = time.time() + 30
            while time.time() < deadline:
                _, stats = handle.request("GET", "/stats")
                if stats["http"]["by_endpoint"].get("/expand", 0) >= 4:
                    break
                time.sleep(0.02)
            release.set()
            for thread in threads:
                thread.join(timeout=60)
            assert len(payloads) == 4
            statuses = {status for status, _ in payloads}
            assert statuses == {200}
            bodies = {body for _, body in payloads}
            assert len(bodies) == 1, "coalesced requests must share one payload"
            _, stats = handle.request("GET", "/stats")
            assert stats["http"]["coalesced_requests"] >= 3
        finally:
            release.set()
            handle.close()
