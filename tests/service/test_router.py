"""ShardRouter behaviour: exact equivalence with the single-shard path."""

import pytest

from repro.retrieval import SearchResult, merge_ranked_lists
from repro.service import ExpansionService, ShardRouter, ShardedSnapshot


@pytest.fixture(scope="module")
def sharded_snapshot(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=4)


@pytest.fixture()
def router(sharded_snapshot) -> ShardRouter:
    return ShardRouter(sharded_snapshot)


@pytest.fixture()
def single(snapshot) -> ExpansionService:
    return ExpansionService.from_snapshot(snapshot)


class TestEquivalence:
    def test_expand_query_identical_to_single_shard(
        self, small_benchmark, router, single
    ):
        """Same linked entities, same expansion, same doc ids AND scores."""
        for topic in small_benchmark.topics:
            mine = router.expand_query(topic.keywords, top_k=10)
            reference = single.expand_query(topic.keywords, top_k=10)
            assert mine.link.article_ids == reference.link.article_ids
            assert mine.expansion.article_ids == reference.expansion.article_ids
            assert mine.expansion.titles == reference.expansion.titles
            assert [(r.doc_id, r.rank) for r in mine.results] == \
                   [(r.doc_id, r.rank) for r in reference.results]
            for a, b in zip(mine.results, reference.results):
                assert a.score == b.score  # bit-identical, not approx

    def test_batch_expand_identical_to_single_shard(
        self, small_benchmark, router, single
    ):
        queries = [topic.keywords for topic in small_benchmark.topics]
        batch = router.batch_expand(queries, top_k=10)
        for query, response in zip(queries, batch):
            reference = single.expand_query(query, top_k=10)
            assert [(r.doc_id, r.score) for r in response.results] == \
                   [(r.doc_id, r.score) for r in reference.results]

    def test_single_shard_router_matches_too(self, snapshot, small_benchmark, single):
        one = ShardRouter(ShardedSnapshot.from_snapshot(snapshot, num_shards=1))
        for topic in small_benchmark.topics:
            mine = one.expand_query(topic.keywords, top_k=10)
            reference = single.expand_query(topic.keywords, top_k=10)
            assert [(r.doc_id, r.score) for r in mine.results] == \
                   [(r.doc_id, r.score) for r in reference.results]

    def test_unlinked_query_falls_back_to_keywords(self, router, single):
        text = "completely unknowable gibberish"
        mine = router.expand_query(text)
        reference = single.expand_query(text)
        assert not mine.linked
        assert [(r.doc_id, r.score) for r in mine.results] == \
               [(r.doc_id, r.score) for r in reference.results]
        assert router.stats().unlinked_queries == 1

    def test_empty_query_returns_no_results(self, router):
        response = router.expand_query("!!! ???")
        assert response.normalized_query == ""
        assert response.results == ()


class TestRouting:
    def test_seed_sets_route_to_their_owner_shard(self, small_benchmark, router):
        """Repeats of one query always hit the same worker's cache."""
        keywords = small_benchmark.topics[0].keywords
        first = router.expand_query(keywords)
        assert first.linked
        owner = router.owner_shard(first.link.article_ids)
        second = router.expand_query(keywords)
        assert second.expansion_cached
        per_shard = router.stats().shard_stats
        assert per_shard[owner].expansion_cache.hits >= 1
        for shard_id, stats in enumerate(per_shard):
            if shard_id != owner:
                assert stats.expansion_cache.hits == 0

    def test_batch_prefills_across_shards(self, small_benchmark, router):
        queries = [topic.keywords for topic in small_benchmark.topics]
        batch = router.batch_expand(queries)
        # The batch pays for its own expansions: nothing reports cached.
        assert not any(r.expansion_cached for r in batch if r.linked)
        again = router.batch_expand(queries)
        assert all(r.expansion_cached for r in again if r.linked)

    def test_duplicate_raw_queries_share_a_response(self, small_benchmark, router):
        keywords = small_benchmark.topics[0].keywords
        batch = router.batch_expand([keywords, keywords, keywords.upper()])
        assert batch[0] is batch[1] is batch[2]
        assert router.stats().queries == 3  # offered load

    def test_clear_caches_forces_recompute(self, small_benchmark, router):
        keywords = small_benchmark.topics[0].keywords
        router.expand_query(keywords)
        router.clear_caches()
        response = router.expand_query(keywords)
        assert not response.expansion_cached
        assert not response.link_cached


class TestStats:
    def test_stats_shape(self, small_benchmark, router):
        router.expand_query(small_benchmark.topics[0].keywords)
        router.batch_expand([small_benchmark.topics[1].keywords])
        stats = router.stats()
        assert stats.shards == 4
        assert stats.queries == 2
        assert stats.batches == 1
        payload = stats.as_dict()
        assert payload["shards"] == 4
        assert len(payload["per_shard"]) == 4
        for cache_key in ("link_cache", "expansion_cache"):
            assert payload[cache_key]["capacity"] > 0
            assert payload[cache_key]["size"] >= 0
        aggregate = stats.expansion_cache
        assert aggregate.misses == sum(
            s.expansion_cache.misses for s in stats.shard_stats
        )

    def test_requests_total_is_monotonic_and_counts_batch_members(
        self, small_benchmark, router
    ):
        """/stats and /healthz read these directly — no per-shard summing."""
        router.expand_query(small_benchmark.topics[0].keywords)
        router.batch_expand([
            small_benchmark.topics[1].keywords,
            small_benchmark.topics[1].keywords,
        ])
        stats = router.stats()
        assert stats.requests_total == 3
        assert stats.errors == 0
        payload = stats.as_dict()
        assert payload["requests_total"] == 3
        assert payload["errors"] == 0

    def test_errors_counted_and_requests_stay_monotonic(
        self, small_benchmark, router, monkeypatch
    ):
        def boom(normalized):
            raise RuntimeError("linker down")

        monkeypatch.setattr(router, "_link", boom)
        with pytest.raises(RuntimeError):
            router.expand_query(small_benchmark.topics[0].keywords)
        with pytest.raises(RuntimeError):
            router.batch_expand([small_benchmark.topics[1].keywords])
        stats = router.stats()
        assert stats.requests_total == 2  # offered load, failures included
        assert stats.errors == 2
        assert stats.queries == 0

    def test_per_shard_hit_rates_guard_zero_lookups(self, small_benchmark, router):
        """Shards that never saw a lookup report 0.0, not a ZeroDivisionError,
        and the rates are exposed per shard in the stats payload."""
        keywords = small_benchmark.topics[0].keywords
        first = router.expand_query(keywords)
        assert first.linked
        router.expand_query(keywords)  # warm repeat: owner shard hits
        stats = router.stats()
        rates = stats.per_shard_hit_rates
        assert len(rates) == stats.shards
        owner = router.owner_shard(first.link.article_ids)
        assert rates[owner] > 0.0
        for shard_id, rate in enumerate(rates):
            if shard_id != owner:
                assert rate == 0.0
        payload = stats.as_dict()
        assert payload["per_shard_hit_rates"] == [round(r, 4) for r in rates]

    def test_empty_segments_are_tolerated(self, snapshot, small_benchmark):
        """More shards than needed leaves some segments empty; ranking
        still works and matches the single-shard path."""
        many = ShardRouter(ShardedSnapshot.from_snapshot(snapshot, num_shards=16))
        single = ExpansionService.from_snapshot(snapshot)
        keywords = small_benchmark.topics[0].keywords
        mine = many.expand_query(keywords, top_k=5)
        reference = single.expand_query(keywords, top_k=5)
        assert [(r.doc_id, r.score) for r in mine.results] == \
               [(r.doc_id, r.score) for r in reference.results]


class TestMerge:
    def test_merge_preserves_scores_and_breaks_ties_by_doc_id(self):
        left = [SearchResult("b", -1.0, 1), SearchResult("d", -3.0, 2)]
        right = [SearchResult("c", -1.0, 1), SearchResult("a", -2.0, 2)]
        merged = merge_ranked_lists([left, right], top_k=3)
        assert [(r.doc_id, r.score, r.rank) for r in merged] == [
            ("b", -1.0, 1), ("c", -1.0, 2), ("a", -2.0, 3),
        ]

    def test_merge_top_k_bounds(self):
        merged = merge_ranked_lists([[SearchResult("a", -1.0, 1)]], top_k=5)
        assert len(merged) == 1
        with pytest.raises(ValueError):
            merge_ranked_lists([], top_k=0)
