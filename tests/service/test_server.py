"""ExpansionService behaviour: end-to-end answers, batching, concurrency."""

import threading

import pytest

from repro.core.expansion import CycleExpander, NeighborhoodCycleExpander
from repro.errors import ServiceError
from repro.linking.linker import EntityLinker
from repro.service import ExpansionService


@pytest.fixture()
def service(snapshot):
    return ExpansionService.from_snapshot(snapshot)


class TestSingleQuery:
    def test_matches_manual_pipeline(self, small_benchmark, service):
        """The service answer equals the hand-assembled offline pipeline."""
        keywords = small_benchmark.topics[0].keywords
        response = service.expand_query(keywords, top_k=10)

        linker = EntityLinker(small_benchmark.graph)
        seeds = linker.link_keywords(keywords)
        expander = NeighborhoodCycleExpander()
        expansion = expander.expand(small_benchmark.graph, seeds)
        engine = small_benchmark.build_engine()
        expected = engine.search_phrases(
            expansion.all_titles(small_benchmark.graph), top_k=10
        )

        assert response.link.article_ids == seeds
        assert response.expansion.article_ids == expansion.article_ids
        assert [r.doc_id for r in response.results] == [r.doc_id for r in expected]

    def test_unlinked_query_falls_back_to_keywords(self, service):
        response = service.expand_query("completely unknowable gibberish")
        assert not response.linked
        assert response.expansion.num_features == 0
        assert service.stats().unlinked_queries == 1

    def test_empty_query_returns_no_results(self, service):
        response = service.expand_query("!!! ???")
        assert response.normalized_query == ""
        assert response.results == ()

    def test_latency_is_reported(self, small_benchmark, service):
        response = service.expand_query(small_benchmark.topics[0].keywords)
        assert response.latency_ms > 0.0

    def test_rejects_empty_engine(self, snapshot):
        from repro.retrieval import SearchEngine

        with pytest.raises(ServiceError):
            ExpansionService(snapshot.graph, SearchEngine(), snapshot.make_linker())


class TestBatch:
    def test_batch_equals_individual_answers(self, small_benchmark, snapshot):
        queries = [topic.keywords for topic in small_benchmark.topics]
        batch_service = ExpansionService.from_snapshot(snapshot)
        batch = batch_service.batch_expand(queries, top_k=10)

        single_service = ExpansionService.from_snapshot(snapshot)
        for query, response in zip(queries, batch):
            single = single_service.expand_query(query, top_k=10)
            assert response.expansion.article_ids == single.expansion.article_ids
            assert response.expansion.titles == single.expansion.titles
            assert [r.doc_id for r in response.results] == \
                   [r.doc_id for r in single.results]

    def test_duplicate_queries_share_a_response(self, small_benchmark, service):
        keywords = small_benchmark.topics[0].keywords
        batch = service.batch_expand([keywords, keywords.upper(), keywords])
        assert batch[0] is batch[1] is batch[2]
        assert service.stats().queries == 3  # offered load, not unique load

    def test_batch_marks_own_work_as_cold(self, small_benchmark, service):
        keywords = small_benchmark.topics[0].keywords
        first = service.batch_expand([keywords])
        second = service.batch_expand([keywords])
        assert not first[0].expansion_cached
        assert second[0].expansion_cached

    def test_empty_batch(self, service):
        assert service.batch_expand([]) == []

    def test_identical_raw_queries_pay_one_pass(self, small_benchmark, snapshot):
        """N copies of one string cost one tokenisation, one link and one
        expansion — not N cache probes racing the in-flight table."""
        calls = []

        class CountingExpander(NeighborhoodCycleExpander):
            def expand(self, graph, seed_articles):
                calls.append(frozenset(seed_articles))
                return super().expand(graph, seed_articles)

            expand_batch = None  # force the per-set path through expand()

        service = ExpansionService.from_snapshot(snapshot, expander=CountingExpander())
        tokenize_calls = []
        original = service.engine.tokenizer.tokenize_phrase

        def counting_tokenize(text):
            tokenize_calls.append(text)
            return original(text)

        service.engine.tokenizer.tokenize_phrase = counting_tokenize
        try:
            keywords = small_benchmark.topics[0].keywords
            batch = service.batch_expand([keywords] * 5)
        finally:
            service.engine.tokenizer.tokenize_phrase = original

        assert len(batch) == 5
        assert len(calls) == 1
        assert tokenize_calls.count(keywords) == 1
        stats = service.stats()
        assert stats.link_cache.misses == 1
        assert stats.queries == 5

    def test_expander_without_batch_api_still_works(self, small_benchmark, snapshot):
        class PlainExpander(NeighborhoodCycleExpander):
            expand_batch = None  # simulate a custom Expander lacking the API

        service = ExpansionService.from_snapshot(
            snapshot, expander=PlainExpander()
        )
        queries = [topic.keywords for topic in list(small_benchmark.topics)[:3]]
        batch = service.batch_expand(queries)
        assert len(batch) == len(queries)
        assert all(response.results for response in batch)

    def test_expand_batch_matches_expand(self, small_benchmark):
        """The amortised core API is exactly equivalent to per-query calls."""
        graph = small_benchmark.graph
        linker = EntityLinker(graph)
        seed_sets = [
            linker.link_keywords(topic.keywords) for topic in small_benchmark.topics
        ]
        expander = NeighborhoodCycleExpander(
            CycleExpander(min_category_ratio=0.2, min_extra_edge_density=0.2)
        )
        batched = expander.expand_batch(graph, seed_sets)
        for seeds, result in zip(seed_sets, batched):
            single = expander.expand(graph, seeds)
            assert result.article_ids == single.article_ids
            assert result.titles == single.titles
            assert result.seed_articles == single.seed_articles


class TestConcurrency:
    def test_racing_identical_queries_compute_once(self, small_benchmark, snapshot):
        """N threads hammering one query must mine cycles exactly once."""
        calls = []
        call_lock = threading.Lock()

        class CountingExpander(NeighborhoodCycleExpander):
            def expand(self, graph, seed_articles):
                with call_lock:
                    calls.append(frozenset(seed_articles))
                return super().expand(graph, seed_articles)

        service = ExpansionService.from_snapshot(snapshot, expander=CountingExpander())
        keywords = small_benchmark.topics[0].keywords
        barrier = threading.Barrier(8)
        responses = [None] * 8
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                responses[slot] = service.expand_query(keywords)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(calls) == 1
        first = responses[0]
        assert all(r.expansion is first.expansion for r in responses)
        stats = service.stats()
        assert stats.queries == 8

    def test_mixed_concurrent_traffic_is_consistent(self, small_benchmark, snapshot):
        service = ExpansionService.from_snapshot(snapshot)
        queries = [topic.keywords for topic in list(small_benchmark.topics)[:4]]
        expected = {
            query: service.expand_query(query).expansion.article_ids
            for query in queries
        }
        errors = []

        def worker(query):
            try:
                for _ in range(5):
                    response = service.expand_query(query)
                    assert response.expansion.article_ids == expected[query]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(query,))
            for query in queries for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestStats:
    def test_counters_accumulate(self, small_benchmark, service):
        keywords = small_benchmark.topics[0].keywords
        service.expand_query(keywords)
        service.expand_query(keywords)
        service.batch_expand([keywords, small_benchmark.topics[1].keywords])
        stats = service.stats()
        assert stats.queries == 4
        assert stats.batches == 1
        assert stats.link_cache.hits >= 1
        assert stats.expansion_cache.hits >= 1
        payload = stats.as_dict()
        assert payload["queries"] == 4
        assert 0.0 <= payload["expansion_cache"]["hit_rate"] <= 1.0

    def test_stats_report_cache_capacity_and_size(self, small_benchmark, snapshot):
        """The stats payload must expose cache bounds and occupancy, not
        just hit/miss counters (operators size caches from it)."""
        service = ExpansionService.from_snapshot(
            snapshot, link_cache_size=17, expansion_cache_size=9
        )
        service.expand_query(small_benchmark.topics[0].keywords)
        payload = service.stats().as_dict()
        assert payload["link_cache"]["capacity"] == 17
        assert payload["expansion_cache"]["capacity"] == 9
        assert payload["link_cache"]["size"] == 1
        assert payload["expansion_cache"]["size"] == 1

    def test_clear_caches_forces_recompute(self, small_benchmark, service):
        keywords = small_benchmark.topics[0].keywords
        service.expand_query(keywords)
        service.clear_caches()
        response = service.expand_query(keywords)
        assert not response.expansion_cached
