"""Fault injection against out-of-process shard serving.

Three layers are exercised:

* :class:`FaultPlan` parsing/counting (pure unit tests);
* a real :class:`ShardWorkerServer` on a loopback socket *in this
  process* (stall / garbage / short faults, handshake negotiation,
  trace propagation) — deterministic and fast, no subprocesses;
* :class:`ShardSupervisor`-managed worker *processes* (kill faults,
  restart-with-backoff, permanent death → graceful degradation, and the
  N-worker bit-identity acceptance check).

``kill`` is only ever used with supervised subprocesses: in-process it
would take pytest down with it.
"""

import asyncio
import time

import pytest

from repro.errors import (
    ServiceError,
    ShardUnavailableError,
    WorkerCallError,
)
from repro.obs import trace as tracing
from repro.service import (
    AsyncShardRouter,
    FaultPlan,
    ShardCallPolicy,
    ShardRouter,
    ShardSupervisor,
    ShardWorkerServer,
    ShardedSnapshot,
    SocketShardAdapter,
    make_shard_worker,
)
from repro.service import wire


@pytest.fixture(scope="module")
def sharded1(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=1)


@pytest.fixture(scope="module")
def sharded2(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=2)


@pytest.fixture(scope="module")
def sharded1_dir(sharded1, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded1")
    sharded1.save(directory)
    return directory


@pytest.fixture(scope="module")
def sharded2_dir(sharded2, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded2")
    sharded2.save(directory)
    return directory


@pytest.fixture(scope="module")
def worker(sharded1):
    return make_shard_worker(sharded1, 0)


def with_server(worker, fn, *, fault_spec="", policy=None):
    """Run ``fn(adapter)`` against an in-process worker server."""

    async def go():
        faults = FaultPlan.from_spec(fault_spec) if fault_spec else None
        server = ShardWorkerServer(worker, 0, faults=faults)
        await server.start("127.0.0.1", 0)
        adapter = SocketShardAdapter(
            lambda: ("127.0.0.1", server.port), 0,
            policy=policy or ShardCallPolicy(),
        )
        try:
            return await fn(adapter)
        finally:
            adapter.close()
            await server.stop()

    return asyncio.run(go())


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec("kill@2, stall=1.5@1:expand_seeds, short@3")
        assert bool(plan)
        assert not bool(FaultPlan.from_spec(""))

    @pytest.mark.parametrize("spec", [
        "kill",              # missing @NTH
        "explode@1",         # unknown action
        "kill@0",            # NTH < 1
        "kill@x",            # NTH not an int
        "stall@1",           # stall without =SECONDS
    ])
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ServiceError):
            FaultPlan.from_spec(spec)

    def test_fires_on_nth_matching_call_only(self):
        plan = FaultPlan.from_spec("stall=1@2:expand_seeds")
        assert plan.check("link_text") is None       # wrong call: no count
        assert plan.check("expand_seeds") is None    # 1st match: armed at 2nd
        fault = plan.check("expand_seeds")
        assert fault is not None and fault.action == "stall"
        assert plan.check("expand_seeds") is None    # already fired

    def test_unfiltered_fault_counts_every_call(self):
        plan = FaultPlan.from_spec("garbage@2")
        assert plan.check("link_text") is None
        assert plan.check("search_with_background") is not None


class TestInProcessWorkerFaults:
    """stall / garbage / short against a loopback ShardWorkerServer."""

    def test_garbage_frame_is_retried_on_fresh_connection(self, worker):
        async def fn(adapter):
            return await adapter.link_text("grand reef of hallowbrook")

        reference = worker.link_text("grand reef of hallowbrook")[0]
        link, _ = with_server(
            worker, fn, fault_spec="garbage@1",
            policy=ShardCallPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        assert link.article_ids == reference.article_ids

    def test_garbage_retry_counter_increments(self, worker):
        async def fn(adapter):
            await adapter.link_text("windmill of calligraphy")
            return adapter.retries_total

        assert with_server(
            worker, fn, fault_spec="garbage@1",
            policy=ShardCallPolicy(max_attempts=3, backoff_base_s=0.01),
        ) == 1

    def test_short_write_is_retried(self, worker):
        async def fn(adapter):
            link, _ = await adapter.link_text("walled manuscript")
            return link, adapter.retries_total

        link, retries = with_server(
            worker, fn, fault_spec="short@1",
            policy=ShardCallPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        assert retries == 1
        assert link.article_ids == \
            worker.link_text("walled manuscript")[0].article_ids

    def test_stalled_call_hits_deadline_then_retry_succeeds(self, worker):
        """A 5 s stall against a 0.4 s deadline costs one deadline, not
        a wedged caller — the retry lands on an unstalled worker."""

        async def fn(adapter):
            started = time.perf_counter()
            link, _ = await adapter.link_text("azure archipelago of milling")
            return link, adapter.retries_total, time.perf_counter() - started

        link, retries, elapsed = with_server(
            worker, fn, fault_spec="stall=5@1",
            policy=ShardCallPolicy(
                call_timeout_s=0.4, max_attempts=2, backoff_base_s=0.01,
            ),
        )
        assert retries == 1
        assert elapsed < 4.0, "the stall must not be waited out"
        assert link.article_ids == \
            worker.link_text("azure archipelago of milling")[0].article_ids

    def test_hedge_wins_over_stalled_call(self, worker):
        """With hedging armed, a stalled primary is overtaken by the
        hedge on a fresh connection; the first answer wins."""

        async def fn(adapter):
            started = time.perf_counter()
            link, _ = await adapter.link_text("emerald windmill guild")
            return (
                link,
                adapter.hedges_total,
                adapter.hedge_wins_total,
                adapter.retries_total,
                time.perf_counter() - started,
            )

        link, hedges, wins, retries, elapsed = with_server(
            worker, fn, fault_spec="stall=3@1",
            policy=ShardCallPolicy(
                call_timeout_s=15.0, max_attempts=1, hedge_after_s=0.15,
            ),
        )
        assert (hedges, wins, retries) == (1, 1, 0)
        assert elapsed < 2.5, "the hedge answer must beat the stall"
        assert link.article_ids == \
            worker.link_text("emerald windmill guild")[0].article_ids

    def test_worker_error_frame_is_never_retried(self, worker):
        async def fn(adapter):
            with pytest.raises(WorkerCallError) as err:
                await adapter._call("not_a_protocol_call", {})
            return err.value.error_type, adapter.retries_total

        error_type, retries = with_server(worker, fn)
        assert error_type == "unknown_call"
        assert retries == 0, "a deterministic worker error must not retry"

    def test_protocol_version_mismatch_is_a_clean_error(self, worker):
        async def fn(adapter):
            host, port = "127.0.0.1", adapter._endpoint()[1]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await wire.write_frame(
                    writer, {"call": "hello", "protocol": 99}
                )
                response = await wire.read_frame(reader)
                trailing = await wire.read_frame(reader)
            finally:
                writer.close()
            return response, trailing

        response, trailing = with_server(worker, fn)
        assert response["error"]["type"] == "protocol_mismatch"
        assert "99" in response["error"]["message"]
        assert trailing is None, "the worker must close after the mismatch"

    def test_first_frame_must_be_hello(self, worker):
        async def fn(adapter):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", adapter._endpoint()[1]
            )
            try:
                await wire.write_frame(
                    writer,
                    {"call": "link_text", "protocol": 1, "normalized": "x"},
                )
                return await wire.read_frame(reader)
            finally:
                writer.close()

        response = with_server(worker, fn)
        assert response["error"]["type"] == "protocol_error"

    def test_trace_id_propagates_into_worker_and_spans_replay(self, worker):
        seen = {}
        real_link_text = worker.link_text

        def spy(normalized):
            active = tracing.current_trace()
            seen["trace_id"] = active.trace_id if active else None
            return real_link_text(normalized)

        worker.link_text = spy
        try:
            async def fn(adapter):
                trace = tracing.Trace(trace_id="trace-originates-router-side")
                with tracing.start_trace(trace):
                    await adapter.link_text("grand reef")
                return trace

            trace = with_server(worker, fn)
        finally:
            del worker.link_text
        assert seen["trace_id"] == "trace-originates-router-side"
        link_spans = [s for s in trace.spans if s.stage == "link"]
        assert link_spans, "worker-side spans must replay into the trace"
        assert link_spans[0].shard == 0
        assert "cached" in link_spans[0].labels


class TestSupervisedWorkers:
    """Real worker processes under ShardSupervisor."""

    def test_killed_worker_is_restarted_and_call_succeeds(self, sharded1_dir):
        """kill@2: the first call serves, the second crashes the worker
        mid-call; the supervisor restarts it and a patient adapter's
        retry succeeds against the fresh process."""
        supervisor = ShardSupervisor(
            str(sharded1_dir), 1,
            fault_specs={0: "kill@2"}, max_restarts=3,
        )
        supervisor.start(timeout_s=120.0)
        try:
            adapter = SocketShardAdapter(
                lambda: supervisor.endpoint(0), 0,
                policy=ShardCallPolicy(
                    max_attempts=12, backoff_base_s=0.25,
                    backoff_max_s=1.0, call_timeout_s=30.0,
                ),
            )

            async def go():
                first = await adapter.link_text("walled manuscript")
                second = await adapter.link_text("walled manuscript")
                return first, second

            first, second = asyncio.run(go())
            assert first[0].article_ids == second[0].article_ids
            assert adapter.retries_total >= 1
            assert supervisor.restarts_total == 1
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                states = [w["state"] for w in supervisor.describe()]
                if states == ["up"]:
                    break
                time.sleep(0.1)
            assert states == ["up"]
        finally:
            supervisor.stop()

    def test_socket_serving_is_bit_identical_to_in_process(
        self, small_benchmark, sharded2, sharded2_dir
    ):
        """The acceptance bar: N supervised worker processes answer the
        full topic set with the same doc ids AND scores as the purely
        in-process router."""
        supervisor = ShardSupervisor(str(sharded2_dir), 2)
        supervisor.start(timeout_s=120.0)
        async_router = AsyncShardRouter(
            ShardRouter(sharded2), supervisor=supervisor
        )
        try:
            reference = ShardRouter(sharded2)

            async def all_queries():
                return [
                    await async_router.expand_query(topic.keywords, top_k=10)
                    for topic in small_benchmark.topics
                ]

            responses = asyncio.run(all_queries())
            for topic, mine in zip(small_benchmark.topics, responses):
                ref = reference.expand_query(topic.keywords, top_k=10)
                assert mine.link.article_ids == ref.link.article_ids
                assert mine.expansion.article_ids == ref.expansion.article_ids
                assert [(r.doc_id, r.score) for r in mine.results] == \
                       [(r.doc_id, r.score) for r in ref.results], topic.keywords
            assert all(w["state"] == "up" for w in supervisor.describe())
            stats = async_router.stats()
            assert stats.worker_restarts == 0
        finally:
            async_router.close()
            supervisor.stop()

    def test_permanently_dead_shard_degrades_gracefully(
        self, small_benchmark, sharded2, sharded2_dir
    ):
        """One shard's worker dies on its first call with no restart
        budget: queries owned by the healthy shard stay bit-identical
        (rank falls back to the router-local engine); queries owned by
        the dead shard raise the structured unavailability error."""
        supervisor = ShardSupervisor(
            str(sharded2_dir), 2,
            fault_specs={1: "kill@1"}, max_restarts=0,
        )
        supervisor.start(timeout_s=120.0)
        async_router = AsyncShardRouter(
            ShardRouter(sharded2), supervisor=supervisor,
            policy=ShardCallPolicy(
                max_attempts=2, backoff_base_s=0.05, call_timeout_s=30.0,
            ),
        )
        try:
            reference = ShardRouter(sharded2)
            owners = {}
            for topic in small_benchmark.topics:
                link, _ = reference.link_text(
                    reference.normalize(topic.keywords)
                )
                owners[topic.keywords] = reference.owner_shard(link.article_ids)
            healthy = [k for k, owner in owners.items() if owner == 0]
            dead = [k for k, owner in owners.items() if owner == 1]
            assert healthy and dead, f"need topics on both shards: {owners}"

            async def run_healthy():
                return [
                    await async_router.expand_query(keywords, top_k=10)
                    for keywords in healthy
                ]

            responses = asyncio.run(run_healthy())
            for keywords, mine in zip(healthy, responses):
                ref = reference.expand_query(keywords, top_k=10)
                assert [(r.doc_id, r.score) for r in mine.results] == \
                       [(r.doc_id, r.score) for r in ref.results], keywords

            with pytest.raises(ShardUnavailableError) as err:
                asyncio.run(async_router.expand_query(dead[0]))
            assert err.value.shard_id == 1
            assert err.value.retry_after_s > 0

            assert supervisor.degraded
            states = {w["shard"]: w["state"] for w in supervisor.describe()}
            assert states[0] == "up"
            assert states[1] == "failed"
            fallbacks = sum(
                getattr(a, "fallback_calls_total", 0)
                for a in async_router.adapters
            )
            assert fallbacks >= 1, "rank must have fallen back locally"
        finally:
            async_router.close()
            supervisor.stop()
