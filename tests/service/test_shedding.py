"""Load shedding fault matrix: queue bound, client buckets, recovery.

The controller tests drive a fake monotonic clock, so admit/refuse
sequences are exact.  The HTTP tests run a real front end: the queue
bound is exercised by gating the router behind an ``asyncio.Event`` so
"server busy" is a controlled state, not a race; the client-bucket
tests inject a fake-clock controller so throttling decisions are
deterministic over real sockets.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.obs.metrics import parse_prometheus_text
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    AsyncShardRouter,
    HttpFrontEnd,
    ShardRouter,
    ShardedSnapshot,
)
from repro.service.admission import SHED_CLIENT_RATE, SHED_OVER_CAPACITY
from repro.service.http import SHEDDABLE_PATHS


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmissionPolicy:
    def test_defaults_disable_everything(self):
        policy = AdmissionPolicy()
        assert not policy.enabled

    def test_either_knob_enables(self):
        assert AdmissionPolicy(queue_limit=4).enabled
        assert AdmissionPolicy(client_rate=2.0).enabled

    @pytest.mark.parametrize("kwargs", [
        {"queue_limit": 0},
        {"client_rate": 0.0},
        {"client_rate": -1.0},
        {"client_burst": 0.5},
        {"retry_after_s": 0.0},
        {"max_tracked_clients": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServiceError):
            AdmissionPolicy(**kwargs)


class TestQueueGate:
    def test_bounds_inflight_and_recovers(self):
        controller = AdmissionController(AdmissionPolicy(queue_limit=2))
        first = controller.admit("a")
        second = controller.admit("b")
        assert first.admitted and second.admitted
        third = controller.admit("c")
        assert not third.admitted
        assert third.reason == SHED_OVER_CAPACITY
        assert third.retry_after_s == pytest.approx(1.0)
        controller.release()
        assert controller.admit("c").admitted
        controller.release()
        controller.release()
        assert controller.queue_depth == 0
        assert controller.shed_total == 1

    def test_refusals_never_take_a_slot(self):
        controller = AdmissionController(AdmissionPolicy(queue_limit=1))
        assert controller.admit("a").admitted
        for _ in range(5):
            assert not controller.admit("b").admitted
        assert controller.queue_depth == 1
        controller.release()
        assert controller.queue_depth == 0

    def test_snapshot_reports_peak_and_reasons(self):
        controller = AdmissionController(AdmissionPolicy(queue_limit=2))
        controller.admit("a")
        controller.admit("b")
        controller.admit("c")
        controller.release()
        snapshot = controller.snapshot()
        assert snapshot["queue_depth"] == 1
        assert snapshot["peak_queue_depth"] == 2
        assert snapshot["queue_limit"] == 2
        assert snapshot["shed_by_reason"] == {SHED_OVER_CAPACITY: 1}


class TestClientBuckets:
    def _controller(self, **kwargs) -> tuple[AdmissionController, FakeClock]:
        clock = FakeClock()
        policy = AdmissionPolicy(**kwargs)
        return AdmissionController(policy, clock=clock), clock

    def test_burst_then_throttle_then_refill(self):
        controller, clock = self._controller(client_rate=2.0, client_burst=4.0)
        outcomes = [controller.admit("greedy").admitted for _ in range(6)]
        assert outcomes == [True] * 4 + [False] * 2
        refused = controller.admit("greedy")
        assert refused.reason == SHED_CLIENT_RATE
        assert refused.retry_after_s == pytest.approx(0.5)
        clock.advance(1.0)  # 2 tokens accrue
        assert controller.admit("greedy").admitted
        assert controller.admit("greedy").admitted
        assert not controller.admit("greedy").admitted

    def test_greedy_client_cannot_starve_polite_one(self):
        controller, _ = self._controller(client_rate=1.0, client_burst=2.0)
        for _ in range(10):
            controller.admit("greedy")
        polite = [controller.admit("polite").admitted for _ in range(2)]
        assert polite == [True, True]
        snapshot = controller.snapshot()
        assert snapshot["shed_by_reason"] == {SHED_CLIENT_RATE: 8}

    def test_full_recovery_after_flood_stops(self):
        controller, clock = self._controller(client_rate=4.0, client_burst=4.0)
        for _ in range(20):
            controller.admit("flood")
        clock.advance(10.0)  # far more than burst/rate
        outcomes = [controller.admit("flood").admitted for _ in range(4)]
        assert outcomes == [True] * 4, "bucket must refill to full burst"

    def test_client_table_is_lru_bounded(self):
        controller, _ = self._controller(
            client_rate=1.0, client_burst=1.0, max_tracked_clients=3
        )
        for name in ("a", "b", "c", "d"):
            controller.admit(name)
        assert controller.snapshot()["clients_tracked"] == 3
        # "a" was evicted: it gets a fresh (full) bucket again.
        assert controller.admit("a").admitted

    def test_client_gate_runs_before_queue_gate(self):
        controller, _ = self._controller(
            queue_limit=1, client_rate=1.0, client_burst=1.0
        )
        assert controller.admit("x").admitted  # takes the only slot
        refused = controller.admit("x")  # bucket empty AND queue full
        assert refused.reason == SHED_CLIENT_RATE


# ----------------------------------------------------------------------
# HTTP integration
# ----------------------------------------------------------------------


class GatedService:
    """Delegating wrapper that can hold expansions at an asyncio gate."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.gate = asyncio.Event()
        self.gate.set()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    async def expand_query(self, query, top_k=10):
        await self.gate.wait()
        return await self._inner.expand_query(query, top_k=top_k)


class ShedServer:
    """Front end + gate + raw-header access on a private loop thread."""

    def __init__(self, snapshot, admission) -> None:
        self.router = ShardRouter(snapshot)
        self.gated = GatedService(AsyncShardRouter(self.router))
        self.front = HttpFrontEnd(self.gated, admission=admission)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        server = asyncio.run_coroutine_threadsafe(
            self.front.start("127.0.0.1", 0), self.loop
        ).result(timeout=30)
        self.port = server.sockets[0].getsockname()[1]

    def request(self, method, path, payload=None, client=None):
        """Returns (status, body, headers-dict)."""
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if client is not None:
            headers["X-Client-Id"] = client
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request(method, path, body, headers)
            response = conn.getresponse()
            return (
                response.status,
                json.loads(response.read()),
                {k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            return conn.getresponse().read().decode()
        finally:
            conn.close()

    def hold(self):
        self.loop.call_soon_threadsafe(self.gated.gate.clear)

    def release(self):
        self.loop.call_soon_threadsafe(self.gated.gate.set)

    def close(self):
        self.release()
        asyncio.run_coroutine_threadsafe(
            self.front.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.router.close()


@pytest.fixture(scope="module")
def sharded(snapshot):
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=1)


@pytest.fixture()
def queue_server(sharded):
    server = ShedServer(sharded, AdmissionPolicy(queue_limit=2))
    yield server
    server.close()


@pytest.fixture(scope="module")
def topic(sharded):
    return " ".join(sorted(sharded.title_index)[0])


class TestQueueFullOverHttp:
    def _wait_for_depth(self, server, depth, timeout_s=5.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if server.front.admission.queue_depth >= depth:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"queue never reached depth {depth}; "
            f"at {server.front.admission.queue_depth}"
        )

    def test_queue_full_gets_structured_429_and_recovers(
        self, queue_server, topic
    ):
        server = queue_server
        server.hold()
        results: list[tuple[int, dict]] = []

        def held_request():
            status, payload, _ = server.request(
                "POST", "/expand", {"query": topic}
            )
            results.append((status, payload))

        workers = [threading.Thread(target=held_request) for _ in range(2)]
        for worker in workers:
            worker.start()
        self._wait_for_depth(server, 2)

        # Queue full: the third request is refused before router work.
        status, payload, headers = server.request(
            "POST", "/expand", {"query": topic}
        )
        assert status == 429
        assert payload["error"]["code"] == SHED_OVER_CAPACITY
        assert "retry later" in payload["error"]["message"]
        assert payload["error"]["retry_after_s"] == pytest.approx(1.0)
        assert headers["retry-after"] == "1"

        # Flood over: held requests complete fine, shedding stops.
        server.release()
        for worker in workers:
            worker.join(timeout=30)
        assert [status for status, _ in results] == [200, 200]
        status, _, _ = server.request("POST", "/expand", {"query": topic})
        assert status == 200
        assert server.front.admission.queue_depth == 0

        # Accounting: the 429 is in errors_by_status, repro_shed_total
        # and the healthz admission block.
        status, health, _ = server.request("GET", "/healthz")
        assert health["errors_by_status"].get("429") == 1
        assert health["admission"]["shed_total"] == 1
        assert health["admission"]["shed_by_reason"] == {SHED_OVER_CAPACITY: 1}
        samples = parse_prometheus_text(server.metrics_text())["samples"]
        assert samples[(
            "repro_shed_total", frozenset({("reason", SHED_OVER_CAPACITY)})
        )] == 1.0
        assert samples[("repro_admission_queue_depth", frozenset())] == 0.0

    def test_non_sheddable_paths_bypass_the_queue(self, queue_server, topic):
        server = queue_server
        server.hold()
        workers = [
            threading.Thread(target=lambda: server.request(
                "POST", "/expand", {"query": topic}
            ))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        self._wait_for_depth(server, 2)
        # Introspection must stay reachable during overload — that is
        # how operators see the overload at all.
        for path in ("/healthz", "/stats", "/metrics"):
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                conn.request("GET", path)
                assert conn.getresponse().status == 200, path
            finally:
                conn.close()
        server.release()
        for worker in workers:
            worker.join(timeout=30)

    def test_sheddable_paths_constant_matches_routes(self):
        assert SHEDDABLE_PATHS == {"/expand", "/search", "/batch_expand"}


class TestClientIsolationOverHttp:
    @pytest.fixture()
    def bucket_server(self, sharded):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(client_rate=1.0, client_burst=3.0), clock=clock
        )
        server = ShedServer(sharded, controller)
        server.clock = clock
        yield server
        server.close()

    def test_greedy_throttled_polite_untouched(self, bucket_server, topic):
        server = bucket_server
        greedy = [
            server.request("POST", "/search", {"query": topic}, client="greedy")
            for _ in range(6)
        ]
        assert [status for status, _, _ in greedy] == \
            [200, 200, 200, 429, 429, 429]
        refused = greedy[3]
        assert refused[1]["error"]["code"] == SHED_CLIENT_RATE
        assert float(refused[2]["retry-after"]) >= 1
        # Every polite request is admitted while the greedy client is
        # actively being refused.
        polite = [
            server.request("POST", "/search", {"query": topic}, client="polite")
            for _ in range(3)
        ]
        assert [status for status, _, _ in polite] == [200, 200, 200]

        # Recovery: once the flood stops and the bucket refills, the
        # greedy client serves again — shed rate returns to zero.
        server.clock.advance(10.0)
        status, _, _ = server.request(
            "POST", "/search", {"query": topic}, client="greedy"
        )
        assert status == 200
        status, health, _ = server.request("GET", "/healthz")
        assert health["admission"]["shed_by_reason"] == {SHED_CLIENT_RATE: 3}
        assert health["errors_by_status"].get("429") == 3

    def test_missing_client_header_falls_back_to_peer(
        self, bucket_server, topic
    ):
        server = bucket_server
        # No X-Client-Id: both "different" callers share the loopback
        # peer address, hence one bucket (burst 3).
        statuses = [
            server.request("POST", "/search", {"query": topic})[0]
            for _ in range(4)
        ]
        assert statuses == [200, 200, 200, 429]
