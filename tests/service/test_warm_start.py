"""Warm starts from a persisted recency set (the cold-start follow-up).

ROADMAP's open item: a freshly launched server should not cold-start
into a stampede of expansion misses when the previous process already
knew what was hot.  The recency set now round-trips through
``recent_queries.json`` next to the snapshot manifest, and a restarted
stack that replays it serves its *first* client hit of each hot query
from the expansion cache.
"""

import json

import pytest

from repro.obs import RequestLog
from repro.obs.logs import RECENT_QUERIES_FILENAME
from repro.service import ShardRouter, ShardedSnapshot
from repro.updates import UpdateCoordinator


@pytest.fixture(scope="module")
def sharded(snapshot):
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=2)


@pytest.fixture(scope="module")
def hot_queries(sharded):
    titles = sorted(" ".join(tokens) for tokens in sharded.title_index)
    return titles[:5]


class TestRoundTrip:
    def test_save_then_load_restores_the_set_in_order(
        self, tmp_path, hot_queries
    ):
        log = RequestLog(slow_ms=100.0)
        for query in hot_queries:
            log.record(endpoint="/expand", latency_ms=1.0, status=200,
                       query=query)
        path = log.save_recent(tmp_path)
        assert path == tmp_path / RECENT_QUERIES_FILENAME

        restored = RequestLog(slow_ms=100.0)
        assert restored.load_recent(tmp_path) == len(hot_queries)
        assert restored.recent_queries() == hot_queries

    def test_save_is_atomic_and_sorted_json(self, tmp_path, hot_queries):
        log = RequestLog(slow_ms=100.0)
        log.seed_recent(hot_queries)
        log.save_recent(tmp_path)
        payload = json.loads((tmp_path / RECENT_QUERIES_FILENAME).read_text())
        assert payload["version"] == 1
        assert payload["queries"] == hot_queries
        assert not list(tmp_path.glob("*.tmp")), "tmp file must be renamed"

    def test_failed_requests_never_enter_the_set(self, tmp_path):
        log = RequestLog(slow_ms=100.0)
        log.record(endpoint="/expand", latency_ms=1.0, status=400,
                   query="bad query")
        log.record(endpoint="/expand", latency_ms=1.0, status=200,
                   query="good query")
        log.save_recent(tmp_path)
        restored = RequestLog(slow_ms=100.0)
        restored.load_recent(tmp_path)
        assert restored.recent_queries() == ["good query"]

    def test_missing_and_corrupt_files_load_nothing(self, tmp_path):
        log = RequestLog(slow_ms=100.0)
        assert log.load_recent(tmp_path) == 0
        (tmp_path / RECENT_QUERIES_FILENAME).write_text("{not json")
        assert log.load_recent(tmp_path) == 0
        (tmp_path / RECENT_QUERIES_FILENAME).write_text('{"queries": 7}')
        assert log.load_recent(tmp_path) == 0
        assert log.recent_queries() == []

    def test_capacity_bounds_an_oversized_file(self, tmp_path):
        big = [f"query {i}" for i in range(40)]
        RequestLog(slow_ms=100.0, recent_capacity=40).seed_recent(big)
        log = RequestLog(slow_ms=100.0, recent_capacity=40)
        log.seed_recent(big)
        log.save_recent(tmp_path)
        bounded = RequestLog(slow_ms=100.0, recent_capacity=8)
        assert bounded.load_recent(tmp_path) == 8
        assert bounded.recent_queries() == big[-8:]

    def test_non_string_entries_are_skipped(self, tmp_path):
        (tmp_path / RECENT_QUERIES_FILENAME).write_text(json.dumps(
            {"version": 1, "queries": ["ok", 7, None, "", "also ok"]}
        ))
        log = RequestLog(slow_ms=100.0)
        assert log.load_recent(tmp_path) == 2
        assert log.recent_queries() == ["ok", "also ok"]


class TestFreshServerWarmStart:
    def test_first_hit_lands_at_cached_tier_after_restart(
        self, sharded, hot_queries, tmp_path
    ):
        # Previous process: serves traffic, persists its recency set on
        # the way down (what _serve_http does at shutdown).
        old_router = ShardRouter(sharded)
        old_log = RequestLog(slow_ms=100.0)
        try:
            for query in hot_queries:
                response = old_router.expand_query(query, top_k=10)
                assert not response.expansion_cached
                old_log.record(endpoint="/expand", latency_ms=1.0,
                               status=200, query=query)
            old_log.save_recent(tmp_path)
        finally:
            old_router.close()

        # Fresh process: cold caches, loads the set, replays it through
        # the router before taking traffic (what _serve_http does at
        # startup) — then the first *client* hit is already cached.
        new_router = ShardRouter(sharded)
        new_log = RequestLog(slow_ms=100.0)
        try:
            assert new_log.load_recent(tmp_path) == len(hot_queries)
            for query in new_log.recent_queries():
                new_router.expand_query(query, top_k=1)
            for query in hot_queries:
                response = new_router.expand_query(query, top_k=10)
                assert response.expansion_cached, (
                    f"first hit of {query!r} missed the cache after warm start"
                )
        finally:
            new_router.close()

    def test_warmed_answers_stay_bit_identical(
        self, sharded, hot_queries, tmp_path
    ):
        reference_router = ShardRouter(sharded)
        reference = [
            reference_router.expand_query(query, top_k=10)
            for query in hot_queries
        ]
        reference_router.close()

        log = RequestLog(slow_ms=100.0)
        log.seed_recent(hot_queries)
        log.save_recent(tmp_path)
        warmed_router = ShardRouter(sharded)
        warmed_log = RequestLog(slow_ms=100.0)
        warmed_log.load_recent(tmp_path)
        try:
            for query in warmed_log.recent_queries():
                warmed_router.expand_query(query, top_k=1)
            for query, expected in zip(hot_queries, reference):
                got = warmed_router.expand_query(query, top_k=10)
                assert [(r.doc_id, r.score) for r in got.results] == \
                       [(r.doc_id, r.score) for r in expected.results], query
        finally:
            warmed_router.close()


class TestCompactionPersistsRecency:
    def test_compact_writes_the_recency_set_next_to_the_snapshot(
        self, snapshot, hot_queries, tmp_path
    ):
        root = tmp_path / "serving"
        sharded = ShardedSnapshot.from_snapshot(snapshot, num_shards=2)
        sharded.save(root)
        router = ShardRouter(ShardedSnapshot.load(root))
        request_log = RequestLog(slow_ms=100.0)
        coordinator = UpdateCoordinator(
            router, snapshot_dir=root, request_log=request_log
        )
        try:
            for query in hot_queries:
                router.expand_query(query, top_k=10)
                request_log.record(endpoint="/expand", latency_ms=1.0,
                                   status=200, query=query)
            summary = coordinator.compact()
            assert summary["saved"]
            persisted = json.loads(
                (root / RECENT_QUERIES_FILENAME).read_text()
            )
            assert persisted["queries"] == hot_queries
            # The file sits at the snapshot *root*, not inside a
            # generation dir — it survives generation turnover.
            assert not (root / "gen-0002" / RECENT_QUERIES_FILENAME).exists()
        finally:
            router.close()
