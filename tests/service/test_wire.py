"""Wire protocol: framing edge cases and lossless value codecs."""

import asyncio
import json
import math
import socket
import struct
import threading

import pytest

from repro.core.cycles import Cycle
from repro.core.expansion import ExpansionResult
from repro.core.features import CycleFeatures
from repro.errors import WireProtocolError
from repro.linking.linker import EntityMatch, LinkResult
from repro.retrieval.engine import SearchResult
from repro.retrieval.qlang import BandNode, CombineNode, PhraseNode, TermNode
from repro.service import wire


def run(coro):
    return asyncio.run(coro)


async def _read_chunks(chunks, *, eof=True, max_frame_bytes=wire.MAX_FRAME_BYTES):
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return await wire.read_frame(reader, max_frame_bytes=max_frame_bytes)


class TestFraming:
    def test_round_trip_in_one_chunk(self):
        payload = {"call": "hello", "protocol": 1}
        assert run(_read_chunks([wire.encode_frame(payload)])) == payload

    def test_partial_reads_across_segment_boundaries(self):
        """A frame arriving one byte at a time (worst-case TCP
        segmentation) decodes identically."""
        payload = {"call": "expand_seeds", "seeds": list(range(50))}
        frame = wire.encode_frame(payload)
        # Split inside the length prefix AND inside the body.
        for cuts in ([2], [1, 3, 7], list(range(1, len(frame)))):
            chunks, last = [], 0
            for cut in cuts:
                chunks.append(frame[last:cut])
                last = cut
            chunks.append(frame[last:])
            assert run(_read_chunks(chunks)) == payload

    def test_two_frames_back_to_back(self):
        async def read_two():
            reader = asyncio.StreamReader()
            reader.feed_data(
                wire.encode_frame({"n": 1}) + wire.encode_frame({"n": 2})
            )
            reader.feed_eof()
            first = await wire.read_frame(reader)
            second = await wire.read_frame(reader)
            third = await wire.read_frame(reader)
            return first, second, third

        assert run(read_two()) == ({"n": 1}, {"n": 2}, None)

    def test_clean_eof_returns_none(self):
        assert run(_read_chunks([])) is None

    def test_eof_mid_prefix_raises(self):
        with pytest.raises(WireProtocolError, match="mid-length-prefix"):
            run(_read_chunks([b"\x00\x00"]))

    def test_eof_mid_body_raises(self):
        frame = wire.encode_frame({"call": "hello"})
        with pytest.raises(WireProtocolError, match="mid-frame"):
            run(_read_chunks([frame[:-3]]))

    def test_oversized_frame_rejected_before_body_is_read(self):
        """A corrupt length prefix must fail fast: only the prefix is
        fed, so passing proves the limit check precedes the body read."""
        prefix = struct.pack("!I", 1 << 30)
        with pytest.raises(WireProtocolError, match="exceeds"):
            run(_read_chunks([prefix], eof=False, max_frame_bytes=1024))

    def test_exactly_max_frame_bytes_is_accepted(self):
        payload = {"pad": "x" * 100}
        frame = wire.encode_frame(payload)
        limit = len(frame) - wire._LENGTH.size
        assert run(_read_chunks([frame], max_frame_bytes=limit)) == payload
        with pytest.raises(WireProtocolError, match="exceeds"):
            run(_read_chunks([frame], max_frame_bytes=limit - 1))

    def test_non_json_body_raises(self):
        body = b"\xffgarbage\xfe"
        frame = struct.pack("!I", len(body)) + body
        with pytest.raises(WireProtocolError, match="not valid JSON"):
            run(_read_chunks([frame]))

    def test_non_object_body_raises(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = struct.pack("!I", len(body)) + body
        with pytest.raises(WireProtocolError, match="JSON object"):
            run(_read_chunks([frame]))


class TestSyncFraming:
    """recv_frame/send_frame — the supervisor's blocking ping path."""

    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            wire.send_frame(left, {"call": "hello", "protocol": 1})
            assert wire.recv_frame(right) == {"call": "hello", "protocol": 1}
        finally:
            left.close()
            right.close()

    def test_chunked_send_reassembles(self):
        frame = wire.encode_frame({"chunked": True, "pad": "y" * 500})
        left, right = socket.socketpair()

        def drip():
            for i in range(0, len(frame), 7):
                left.sendall(frame[i:i + 7])
            left.close()

        thread = threading.Thread(target=drip)
        thread.start()
        try:
            assert wire.recv_frame(right) == {"chunked": True, "pad": "y" * 500}
        finally:
            thread.join(timeout=10)
            right.close()

    def test_clean_close_returns_none_and_torn_frame_raises(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert wire.recv_frame(right) is None
        finally:
            right.close()

        left, right = socket.socketpair()
        frame = wire.encode_frame({"call": "hello"})
        left.sendall(frame[: len(frame) // 2])
        left.close()
        try:
            with pytest.raises(WireProtocolError, match="mid-frame"):
                wire.recv_frame(right)
        finally:
            right.close()


def _json_round_trip(payload):
    """Exactly what the wire does to a value: JSON out, JSON back."""
    return json.loads(json.dumps(payload))


class TestValueCodecs:
    def test_background_floats_round_trip_bit_exactly(self):
        """float.hex carries every IEEE double losslessly — including
        values whose decimal repr would not survive a naive encoder."""
        values = [
            0.1, 1.0 / 3.0, math.pi, 5e-324, 1.7976931348623157e308,
            6.02e23, 1e-15 + 1e-30, 0.0,
        ]
        background = {
            TermNode(f"t{i}"): value for i, value in enumerate(values)
        }
        decoded = wire.decode_background(
            _json_round_trip(wire.encode_background(background))
        )
        assert decoded == background
        for leaf, value in background.items():
            # == would pass for close floats; require the exact bits.
            assert decoded[leaf].hex() == value.hex()

    def test_query_ast_round_trip(self):
        root = CombineNode((
            BandNode((TermNode("alpha"), PhraseNode(("beta", "gamma")))),
            TermNode("delta"),
        ))
        assert wire.decode_query(_json_round_trip(wire.encode_query(root))) == root

    def test_query_decode_rejects_malformed(self):
        for payload in ({}, {"term": "x", "extra": 1}, {"nope": []}, "term"):
            with pytest.raises(WireProtocolError):
                wire.decode_query(payload)

    def test_counts_round_trip(self):
        counts = {TermNode("a"): 3, PhraseNode(("b", "c")): 0}
        assert wire.decode_counts(
            _json_round_trip(wire.encode_counts(counts))
        ) == counts

    def test_results_round_trip(self):
        results = [
            SearchResult(doc_id="d1", score=1.2345678901234567, rank=1),
            SearchResult(doc_id="d2", score=-0.0001, rank=2),
        ]
        decoded = wire.decode_results(
            _json_round_trip(wire.encode_results(results))
        )
        assert decoded == results
        # Python's JSON writer emits repr-exact decimals, so plain
        # number scores also round-trip bit-exactly.
        assert [r.score.hex() for r in decoded] == \
               [r.score.hex() for r in results]

    def test_link_result_round_trip(self):
        link = LinkResult(
            matches=(
                EntityMatch(article_id=4, title_tokens=("deep", "sea"),
                            start=0, end=2, via_synonym=False),
                EntityMatch(article_id=9, title_tokens=("reef",),
                            start=3, end=4, via_synonym=True),
            ),
            article_ids=frozenset({4, 9}),
        )
        assert wire.decode_link_result(
            _json_round_trip(wire.encode_link_result(link))
        ) == link

    def test_expansion_round_trip(self):
        expansion = ExpansionResult(
            seed_articles=frozenset({1}),
            article_ids=frozenset({1, 2, 3}),
            titles=("one", "two", "three"),
            cycles=(
                CycleFeatures(
                    cycle=Cycle((1, 10, 2, 11)),
                    num_articles=2, num_categories=2,
                    num_edges=4, max_possible_edges=4,
                ),
            ),
        )
        assert wire.decode_expansion(
            _json_round_trip(wire.encode_expansion(expansion))
        ) == expansion

    def test_malformed_payloads_raise_wire_errors(self):
        with pytest.raises(WireProtocolError):
            wire.decode_link_result({"matches": [{"article_id": "x"}]})
        with pytest.raises(WireProtocolError):
            wire.decode_expansion({"seeds": [1]})
        with pytest.raises(WireProtocolError):
            wire.decode_counts([["not-a-node", 1]])
        with pytest.raises(WireProtocolError):
            wire.decode_background([[{"term": "a"}, "not-hex"]])
        with pytest.raises(WireProtocolError):
            wire.decode_results([{"doc_id": "d"}])
