"""CLI tests (driven in-process against a tiny saved benchmark)."""

import pytest

from repro.cli import (
    analyze_main,
    build_benchmark_main,
    expand_main,
    ground_truth_main,
    main,
    serve_main,
)
from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench")
    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=51, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=52, background_docs=40),
    )
    benchmark.save(directory)
    return str(directory)


class TestBuildBenchmark:
    def test_builds_and_saves(self, tmp_path, capsys):
        out = tmp_path / "bench"
        code = build_benchmark_main(
            ["--out", str(out), "--domains", "3", "--seed", "9"]
        )
        assert code == 0
        assert (out / "wiki.jsonl.gz").exists()
        assert (out / "images.xml").exists()
        assert (out / "topics.json").exists()
        assert "saved" in capsys.readouterr().out


class TestGroundTruth:
    def test_prints_table2(self, bench_dir, capsys):
        code = ground_truth_main(["--benchmark-dir", bench_dir, "--seed", "51"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "O(X(q))" in out

    def test_verbose_lists_features(self, bench_dir, capsys):
        code = ground_truth_main(
            ["--benchmark-dir", bench_dir, "--seed", "51", "--verbose"]
        )
        assert code == 0
        assert "expansion features" in capsys.readouterr().out


class TestAnalyze:
    def test_prints_every_artifact(self, bench_dir, capsys):
        code = analyze_main(["--benchmark-dir", bench_dir, "--seed", "51"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 2", "Table 3", "Table 4", "Figure 5", "Figure 6",
                       "Figure 7a", "Figure 7b", "Figure 9", "Section 3"):
            assert marker in out, marker


class TestExpand:
    def test_expands_known_entity(self, bench_dir, capsys):
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords
        code = expand_main(["--benchmark-dir", bench_dir, keywords])
        assert code == 0
        out = capsys.readouterr().out
        assert "linked entities" in out
        assert "expansion features" in out
        assert "top 10 documents" in out

    def test_unknown_entities_exit_1(self, bench_dir, capsys):
        code = expand_main(["--benchmark-dir", bench_dir, "xyzzy plugh"])
        assert code == 1
        assert "no Wikipedia entities" in capsys.readouterr().out

    def test_bad_lengths_rejected(self, bench_dir):
        with pytest.raises(SystemExit):
            expand_main(["--benchmark-dir", bench_dir, "--lengths", "2,x", "anything"])


class TestDispatcher:
    def test_help(self, capsys):
        assert main([]) == 2
        assert main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_dispatch(self, tmp_path, capsys):
        out = tmp_path / "b"
        assert main(["build-benchmark", "--out", str(out), "--domains", "2"]) == 0


class TestServe:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "--snapshot" in capsys.readouterr().out

    def test_build_then_serve_from_disk(self, bench_dir, tmp_path, capsys):
        snap = tmp_path / "snap"
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords

        code = serve_main([
            "--snapshot", str(snap), "--build", "--benchmark-dir", bench_dir,
            "--query", keywords, "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "built and saved" in out
        assert "linked entities" in out
        assert "#1" in out
        assert '"expansion_cache"' in out

        # Second run cold-starts from the saved snapshot (no benchmark
        # rebuild: point --benchmark-dir at a nonexistent path on purpose).
        code = serve_main([
            "--snapshot", str(snap), "--benchmark-dir", str(tmp_path / "nope"),
            "--query", keywords, "--query", keywords,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        assert out.count("#1 ") >= 2

    def test_missing_snapshot_without_build_fails(self, tmp_path, capsys):
        code = serve_main(["--snapshot", str(tmp_path / "absent"), "--query", "x"])
        assert code == 2
        out = capsys.readouterr().out
        assert "manifest.json" in out
        assert "--build" in out


class TestReport:
    def test_writes_markdown(self, bench_dir, tmp_path, capsys):
        from repro.cli import report_main

        out = tmp_path / "run.md"
        code = report_main(["--benchmark-dir", bench_dir, "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "## Table 4" in out.read_text(encoding="utf-8")

    def test_dispatcher_knows_report(self, bench_dir, tmp_path):
        from repro.cli import main

        out = tmp_path / "run2.md"
        assert main(["report", "--benchmark-dir", bench_dir, "--out", str(out)]) == 0
