"""CLI tests (driven in-process against a tiny saved benchmark)."""

import pytest

from repro.cli import (
    analyze_main,
    build_benchmark_main,
    expand_main,
    ground_truth_main,
    main,
    serve_main,
)
from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench")
    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=51, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=52, background_docs=40),
    )
    benchmark.save(directory)
    return str(directory)


class TestBuildBenchmark:
    def test_builds_and_saves(self, tmp_path, capsys):
        out = tmp_path / "bench"
        code = build_benchmark_main(
            ["--out", str(out), "--domains", "3", "--seed", "9"]
        )
        assert code == 0
        assert (out / "wiki.jsonl.gz").exists()
        assert (out / "images.xml").exists()
        assert (out / "topics.json").exists()
        assert "saved" in capsys.readouterr().out


class TestGroundTruth:
    def test_prints_table2(self, bench_dir, capsys):
        code = ground_truth_main(["--benchmark-dir", bench_dir, "--seed", "51"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "O(X(q))" in out

    def test_verbose_lists_features(self, bench_dir, capsys):
        code = ground_truth_main(
            ["--benchmark-dir", bench_dir, "--seed", "51", "--verbose"]
        )
        assert code == 0
        assert "expansion features" in capsys.readouterr().out


class TestAnalyze:
    def test_prints_every_artifact(self, bench_dir, capsys):
        code = analyze_main(["--benchmark-dir", bench_dir, "--seed", "51"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 2", "Table 3", "Table 4", "Figure 5", "Figure 6",
                       "Figure 7a", "Figure 7b", "Figure 9", "Section 3"):
            assert marker in out, marker


class TestExpand:
    def test_expands_known_entity(self, bench_dir, capsys):
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords
        code = expand_main(["--benchmark-dir", bench_dir, keywords])
        assert code == 0
        out = capsys.readouterr().out
        assert "linked entities" in out
        assert "expansion features" in out
        assert "top 10 documents" in out

    def test_unknown_entities_exit_1(self, bench_dir, capsys):
        code = expand_main(["--benchmark-dir", bench_dir, "xyzzy plugh"])
        assert code == 1
        assert "no Wikipedia entities" in capsys.readouterr().out

    def test_bad_lengths_rejected(self, bench_dir):
        with pytest.raises(SystemExit):
            expand_main(["--benchmark-dir", bench_dir, "--lengths", "2,x", "anything"])


class TestDispatcher:
    def test_help(self, capsys):
        assert main([]) == 2
        assert main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_dispatch(self, tmp_path, capsys):
        out = tmp_path / "b"
        assert main(["build-benchmark", "--out", str(out), "--domains", "2"]) == 0


class TestServe:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "--snapshot" in capsys.readouterr().out

    def test_build_then_serve_from_disk(self, bench_dir, tmp_path, capsys):
        snap = tmp_path / "snap"
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords

        code = serve_main([
            "--snapshot", str(snap), "--build", "--benchmark-dir", bench_dir,
            "--query", keywords, "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "built and saved" in out
        assert "linked entities" in out
        assert "#1" in out
        assert '"expansion_cache"' in out

        # Second run cold-starts from the saved snapshot (no benchmark
        # rebuild: point --benchmark-dir at a nonexistent path on purpose).
        code = serve_main([
            "--snapshot", str(snap), "--benchmark-dir", str(tmp_path / "nope"),
            "--query", keywords, "--query", keywords,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        assert out.count("#1 ") >= 2

    def test_serve_prints_resolved_snapshot_layout(
        self, bench_dir, tmp_path, capsys
    ):
        """Operators must see which on-disk format/shard layout loaded."""
        snap = tmp_path / "snap"
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords
        code = serve_main([
            "--snapshot", str(snap), "--build", "--shards", "2",
            "--benchmark-dir", bench_dir, "--query", keywords,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot layout:" in out
        assert "shards=2" in out

        # Reloading from disk resolves the v3 layout explicitly.
        code = serve_main([
            "--snapshot", str(snap), "--benchmark-dir", str(tmp_path / "nope"),
            "--query", keywords,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot layout: v3 sharded (compact binary blobs, mmap-loaded)" \
            in out

    def test_serve_v1_snapshot_layout_names_v1(self, bench_dir, tmp_path, capsys):
        snap = tmp_path / "snap1"
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords
        assert serve_main([
            "--snapshot", str(snap), "--build", "--benchmark-dir", bench_dir,
            "--query", keywords,
        ]) == 0
        capsys.readouterr()
        assert serve_main([
            "--snapshot", str(snap), "--benchmark-dir", str(tmp_path / "nope"),
            "--query", keywords,
        ]) == 0
        assert "snapshot layout: v1 single-dir (JSON graph + index)" \
            in capsys.readouterr().out

    def test_bad_http_port_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            serve_main(["--snapshot", str(tmp_path / "s"), "--http", "70000"])

    def test_missing_snapshot_without_build_fails(self, tmp_path, capsys):
        code = serve_main(["--snapshot", str(tmp_path / "absent"), "--query", "x"])
        assert code == 2
        out = capsys.readouterr().out
        assert "manifest.json" in out
        assert "--build" in out

    def test_build_and_serve_sharded(self, bench_dir, tmp_path, capsys):
        snap = tmp_path / "snap4"
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords

        code = serve_main([
            "--snapshot", str(snap), "--build", "--shards", "4",
            "--benchmark-dir", bench_dir, "--query", keywords, "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=4" in out
        assert "linked entities" in out
        assert '"per_shard"' in out
        assert (snap / "shard-0003").is_dir()

        # Second run cold-starts from the sharded snapshot on disk.
        code = serve_main([
            "--snapshot", str(snap), "--benchmark-dir", str(tmp_path / "nope"),
            "--query", keywords,
        ])
        assert code == 0
        assert "loaded ShardedSnapshot" in capsys.readouterr().out

    def test_sharded_results_match_single_shard(self, bench_dir, tmp_path, capsys):
        benchmark = Benchmark.load(bench_dir)
        keywords = benchmark.topics[0].keywords
        assert serve_main([
            "--snapshot", str(tmp_path / "s1"), "--build", "--benchmark-dir",
            bench_dir, "--query", keywords,
        ]) == 0
        single_out = capsys.readouterr().out
        assert serve_main([
            "--snapshot", str(tmp_path / "s4"), "--build", "--shards", "4",
            "--benchmark-dir", bench_dir, "--query", keywords,
        ]) == 0
        sharded_out = capsys.readouterr().out

        def result_lines(text):
            return [line for line in text.splitlines() if line.startswith("  #")]

        assert result_lines(single_out) == result_lines(sharded_out)


class TestSnapshotCommand:
    def test_writes_single_shard_snapshot(self, bench_dir, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        code = main(["snapshot", "--out", str(out_dir),
                     "--benchmark-dir", bench_dir])
        assert code == 0
        assert "saved Snapshot" in capsys.readouterr().out
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "wiki.jsonl.gz").exists()

    def test_writes_sharded_snapshot(self, bench_dir, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        code = main(["snapshot", "--out", str(out_dir), "--shards", "2",
                     "--benchmark-dir", bench_dir])
        assert code == 0
        assert "saved ShardedSnapshot" in capsys.readouterr().out
        assert (out_dir / "graph.bin").exists()
        assert (out_dir / "shard-0000" / "partition.json.gz").exists()
        assert (out_dir / "shard-0001" / "index.bin").exists()

    def test_prefill_ships_expansions_per_shard(self, bench_dir, tmp_path, capsys):
        from repro.service import ShardedSnapshot

        out_dir = tmp_path / "snap"
        code = main(["snapshot", "--out", str(out_dir), "--shards", "2",
                     "--prefill", "--benchmark-dir", bench_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "prefilled=" in out
        assert (out_dir / "shard-0000" / "prefill.json.gz").exists()
        loaded = ShardedSnapshot.load(out_dir)
        assert loaded.num_prefilled > 0

    def test_prefill_forces_sharded_format_for_one_shard(
        self, bench_dir, tmp_path, capsys
    ):
        out_dir = tmp_path / "snap"
        code = main(["snapshot", "--out", str(out_dir), "--prefill",
                     "--benchmark-dir", bench_dir])
        assert code == 0
        assert "saved ShardedSnapshot" in capsys.readouterr().out
        assert (out_dir / "shard-0000" / "prefill.json.gz").exists()

    def test_rejects_bad_shard_count(self, bench_dir):
        with pytest.raises(SystemExit):
            main(["snapshot", "--shards", "0", "--benchmark-dir", bench_dir])


class TestReport:
    def test_writes_markdown(self, bench_dir, tmp_path, capsys):
        from repro.cli import report_main

        out = tmp_path / "run.md"
        code = report_main(["--benchmark-dir", bench_dir, "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "## Table 4" in out.read_text(encoding="utf-8")

    def test_dispatcher_knows_report(self, bench_dir, tmp_path):
        from repro.cli import main

        out = tmp_path / "run2.md"
        assert main(["report", "--benchmark-dir", bench_dir, "--out", str(out)]) == 0
