"""Failure-injection tests: corrupted artefacts and adversarial inputs.

The library should fail loudly and precisely — never half-load a corrupt
dump or mis-score a malformed benchmark.
"""

import gzip

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.errors import (
    BenchmarkConfigError,
    DumpFormatError,
    EmptyIndexError,
    GroundTruthError,
    ReproError,
)
from repro.retrieval import SearchEngine
from repro.wiki import SyntheticWikiConfig, read_graph


@pytest.fixture(scope="module")
def saved_benchmark(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench")
    Benchmark.synthetic(
        SyntheticWikiConfig(seed=71, num_domains=3, background_articles=40,
                            background_categories=6),
        SyntheticCollectionConfig(seed=72, background_docs=20),
    ).save(directory)
    return directory


class TestCorruptedArtifacts:
    def test_truncated_graph_dump(self, saved_benchmark, tmp_path):
        source = (saved_benchmark / "wiki.jsonl.gz").read_bytes()
        target = tmp_path / "wiki.jsonl.gz"
        # Truncate the decompressed payload mid-line and recompress.
        payload = gzip.decompress(source)[: len(gzip.decompress(source)) // 2]
        target.write_bytes(gzip.compress(payload))
        with pytest.raises((DumpFormatError, ReproError, EOFError)):
            read_graph(target)

    def test_garbage_graph_dump(self, tmp_path):
        path = tmp_path / "wiki.jsonl"
        path.write_text("this is not a dump\n")
        with pytest.raises(DumpFormatError):
            read_graph(path)

    def test_benchmark_with_corrupt_topics(self, saved_benchmark, tmp_path):
        target = tmp_path / "bench"
        target.mkdir()
        for name in ("wiki.jsonl.gz", "images.xml"):
            (target / name).write_bytes((saved_benchmark / name).read_bytes())
        (target / "topics.json").write_text('{"format": "other"}')
        with pytest.raises(DumpFormatError):
            Benchmark.load(target)

    def test_benchmark_with_corrupt_images(self, saved_benchmark, tmp_path):
        target = tmp_path / "bench"
        target.mkdir()
        (target / "wiki.jsonl.gz").write_bytes(
            (saved_benchmark / "wiki.jsonl.gz").read_bytes()
        )
        (target / "topics.json").write_text(
            (saved_benchmark / "topics.json").read_text()
        )
        (target / "images.xml").write_text("<images><image/></images>")
        with pytest.raises(DumpFormatError):
            Benchmark.load(target)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(BenchmarkConfigError):
            Benchmark.load(tmp_path / "nope")


class TestShardUnavailableOverHttp:
    """A dead shard worker surfaces as a structured, retryable 503."""

    def test_structured_503_envelope_and_retry_after_header(
        self, saved_benchmark
    ):
        import asyncio
        import http.client
        import json
        import threading

        from repro.errors import ShardUnavailableError
        from repro.service import (
            AsyncShardRouter,
            HttpFrontEnd,
            ShardCallPolicy,
            ShardRouter,
            ShardedSnapshot,
            Snapshot,
            SocketShardAdapter,
        )

        benchmark = Benchmark.load(saved_benchmark)
        sharded = ShardedSnapshot.from_snapshot(
            Snapshot.build(benchmark), num_shards=1
        )

        def dead_endpoint():
            raise ShardUnavailableError(
                0, "shard 0 worker is failed (restarts=5)",
                state="failed", retry_after_s=7.0,
            )

        adapter = SocketShardAdapter(
            dead_endpoint, 0, policy=ShardCallPolicy(max_attempts=1)
        )
        front = HttpFrontEnd(AsyncShardRouter(
            ShardRouter(sharded), adapters=[adapter]
        ))
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            server = asyncio.run_coroutine_threadsafe(
                front.start("127.0.0.1", 0), loop
            ).result(timeout=30)
            port = server.sockets[0].getsockname()[1]
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                conn.request(
                    "POST", "/expand",
                    json.dumps({"query": "anything"}).encode(),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                status = response.status
                retry_after = response.getheader("Retry-After")
                payload = json.loads(response.read())
            finally:
                conn.close()
            assert status == 503
            error = payload["error"]
            assert error["code"] == "shard_unavailable"
            assert error["shard"] == 0
            assert error["state"] == "failed"
            assert error["retry_after_s"] == 7.0
            assert "failed" in error["message"]
            assert retry_after == "7"
            asyncio.run_coroutine_threadsafe(
                front.stop(), loop
            ).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            front.service.close()


class TestAdversarialInputs:
    def test_empty_engine_search(self):
        with pytest.raises(EmptyIndexError):
            SearchEngine().search("anything")

    def test_pipeline_rejects_unlinkable_benchmark(self):
        """If no topic links to any article the pipeline refuses."""
        from repro.collection import Topic, TopicSet
        from repro.collection.document import ImageDocument
        from repro.harness import PipelineConfig, run_pipeline
        from repro.wiki import WikiGraphBuilder

        builder = WikiGraphBuilder(strict=False)
        builder.add_article("completely unrelated entity")
        graph = builder.build()
        documents = {"1": ImageDocument(doc_id="1", name="one.jpg")}
        topics = TopicSet()
        topics.add(Topic(topic_id=0, keywords="zzz qqq", relevant=frozenset({"1"})))
        benchmark = Benchmark(graph=graph, documents=documents, topics=topics)
        with pytest.raises(GroundTruthError):
            run_pipeline(benchmark, PipelineConfig(seed=1))

    def test_every_repro_error_is_catchable_at_the_root(self):
        """The advertised contract: one except clause covers the library."""
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, ReproError), name
