"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Cycle,
    compute_features,
    contribution_percent,
    find_cycles,
    five_point_summary,
    max_edges,
    mean_precision,
    top_r_precision,
)
from repro.retrieval import (
    DirichletSmoothing,
    JelinekMercerSmoothing,
    PositionalIndex,
    Tokenizer,
    phrase_occurrences,
)
from repro.wiki import WikiGraphBuilder, normalize_title

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

words = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
texts = st.lists(words, min_size=0, max_size=30).map(" ".join)
doc_ids = st.sets(st.text(alphabet="xyz0123456789", min_size=1, max_size=4),
                  min_size=0, max_size=12)


@st.composite
def random_wiki_graphs(draw):
    """Small random article/category graphs satisfying the schema."""
    rng = random.Random(draw(st.integers(0, 2**16)))
    num_articles = draw(st.integers(2, 10))
    num_categories = draw(st.integers(1, 4))
    builder = WikiGraphBuilder()
    articles = [builder.add_article(f"article {i}") for i in range(num_articles)]
    categories = [builder.add_category(f"category {i}") for i in range(num_categories)]
    for article in articles:
        builder.add_belongs(article, rng.choice(categories))
        if rng.random() < 0.3:
            builder.add_belongs(article, rng.choice(categories))
    for _ in range(draw(st.integers(0, 20))):
        u, v = rng.sample(articles, 2)
        builder.add_link(u, v)
    for child in categories[1:]:
        if rng.random() < 0.7:
            builder.add_inside(child, categories[0])
    return builder.build()


# ----------------------------------------------------------------------
# Tokenizer / titles
# ----------------------------------------------------------------------


class TestTextProperties:
    @given(st.text(max_size=50))
    def test_normalize_title_idempotent(self, title):
        once = normalize_title(title)
        assert normalize_title(once) == once

    @given(st.text(max_size=50))
    def test_tokenize_phrase_matches_rejoined_tokens(self, text):
        tok = Tokenizer()
        phrase = tok.tokenize_phrase(text)
        # Retokenising the joined phrase is a fixed point.
        assert tok.tokenize_phrase(" ".join(phrase)) == phrase

    @given(texts)
    def test_tokens_are_lowercase(self, text):
        for token in Tokenizer().tokenize(text):
            assert token == token.lower()


# ----------------------------------------------------------------------
# Index / phrases
# ----------------------------------------------------------------------


class TestIndexProperties:
    @given(st.lists(texts, min_size=0, max_size=8))
    def test_total_tokens_is_sum_of_lengths(self, docs):
        index = PositionalIndex()
        for number, text in enumerate(docs):
            index.add_document(f"d{number}", text)
        assert index.total_tokens == sum(
            index.document_length(f"d{number}") for number in range(len(docs))
        )

    @given(st.lists(texts, min_size=1, max_size=8), words)
    def test_collection_frequency_consistent_with_postings(self, docs, term):
        index = PositionalIndex()
        for number, text in enumerate(docs):
            index.add_document(f"d{number}", text)
        from_postings = sum(p.term_frequency for p in index.postings(term))
        assert index.collection_frequency(term) == from_postings

    @given(texts, st.integers(1, 3))
    def test_phrase_occurrences_bounded_by_min_tf(self, text, width):
        index = PositionalIndex()
        index.add_document("d", text)
        tokens = tuple(Tokenizer().tokenize(text))
        if len(tokens) < width:
            return
        phrase = tokens[:width]
        count = phrase_occurrences(index, phrase, "d")
        assert count >= 1  # the prefix occurs at least where we took it from
        assert count <= min(index.term_frequency(t, "d") for t in phrase)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


class TestScoringProperties:
    @given(st.integers(0, 50), st.integers(0, 200),
           st.floats(1e-6, 0.5), st.floats(1.0, 5000.0))
    def test_dirichlet_monotone_in_tf(self, tf, doc_len, col_prob, mu):
        model = DirichletSmoothing(mu=mu)
        lower = model.log_prob(tf, doc_len, col_prob)
        higher = model.log_prob(tf + 1, doc_len, col_prob)
        assert higher > lower
        assert math.isfinite(lower)

    @given(st.integers(0, 50), st.integers(1, 200),
           st.floats(1e-6, 0.5), st.floats(0.01, 0.99))
    def test_jm_log_prob_is_valid_log_probability(self, tf, doc_len, col_prob, lam):
        tf = min(tf, doc_len)
        model = JelinekMercerSmoothing(lam=lam)
        value = model.log_prob(tf, doc_len, col_prob)
        assert value <= 0.0 or math.isclose(value, 0.0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetricProperties:
    @given(st.lists(st.text(alphabet="ab1", min_size=1, max_size=3), max_size=20),
           doc_ids, st.integers(1, 20))
    def test_top_r_precision_in_unit_interval(self, ranked, relevant, r):
        value = top_r_precision(ranked, relevant, r)
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.text(alphabet="ab1", min_size=1, max_size=3), max_size=20),
           doc_ids)
    def test_mean_precision_bounded_by_max_component(self, ranked, relevant):
        mean = mean_precision(ranked, relevant)
        components = [top_r_precision(ranked, relevant, r) for r in (1, 5, 10, 15)]
        assert min(components) <= mean <= max(components)

    @given(st.floats(0.01, 1.0), st.floats(0.0, 1.0))
    def test_contribution_sign_matches_difference(self, base, expanded):
        value = contribution_percent(base, expanded)
        if expanded > base:
            assert value > 0
        elif expanded < base:
            assert value < 0
        else:
            assert value == 0

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_five_point_summary_ordered_and_bounded(self, values):
        summary = five_point_summary(values)
        ordered = summary.as_tuple()
        assert ordered == tuple(sorted(ordered))
        assert summary.minimum == min(values)
        assert summary.maximum == max(values)


# ----------------------------------------------------------------------
# Cycles and features on random graphs
# ----------------------------------------------------------------------


class TestCycleProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_wiki_graphs())
    def test_enumerated_cycles_are_valid(self, graph):
        for cycle in find_cycles(graph, max_length=5):
            nodes = cycle.nodes
            assert 2 <= cycle.length <= 5
            assert len(set(nodes)) == cycle.length
            for u, v in zip(nodes, nodes[1:] + nodes[:1]):
                assert graph.has_edge(u, v) or (
                    cycle.length == 2 and v in graph.links_from(u)
                )

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_wiki_graphs())
    def test_cycle_enumeration_deterministic(self, graph):
        assert find_cycles(graph, max_length=4) == find_cycles(graph, max_length=4)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_wiki_graphs())
    def test_features_within_bounds(self, graph):
        for cycle in find_cycles(graph, max_length=5):
            features = compute_features(graph, cycle)
            assert features.num_articles + features.num_categories == cycle.length
            assert cycle.length <= features.num_edges <= features.max_possible_edges
            assert 0.0 <= features.category_ratio <= 1.0
            density = features.extra_edge_density
            assert density is None or 0.0 <= density <= 1.0

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_wiki_graphs(), st.integers(2, 4))
    def test_length_bounds_respected(self, graph, max_length):
        for cycle in find_cycles(graph, max_length=max_length):
            assert cycle.length <= max_length

    @given(st.integers(0, 6), st.integers(0, 6))
    def test_max_edges_non_negative_and_monotone(self, articles, categories):
        value = max_edges(articles, categories)
        assert value >= 0
        assert max_edges(articles + 1, categories) >= value
        assert max_edges(articles, categories + 1) >= value

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(random_wiki_graphs())
    def test_anchored_subset_of_all(self, graph):
        all_cycles = set(find_cycles(graph, max_length=4))
        articles = [a.node_id for a in graph.articles()][:2]
        anchored = set(find_cycles(graph, anchors=articles, max_length=4))
        assert anchored <= all_cycles
        for cycle in anchored:
            assert set(cycle.nodes) & set(articles)


class TestCycleValueProperties:
    @given(st.lists(st.integers(0, 100), min_size=2, max_size=5, unique=True))
    def test_cycle_container_protocol(self, nodes):
        cycle = Cycle(tuple(nodes))
        assert cycle.length == len(nodes)
        for node in nodes:
            assert node in cycle
