"""Shared fixtures for the live-update subsystem tests.

Same small synthetic benchmark as the service suite; the bit-identity
helpers live in :mod:`update_helpers` (imported directly by the tests —
these directories are not packages).
"""

import pytest

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.service import ShardedSnapshot, Snapshot
from repro.wiki import SyntheticWikiConfig


@pytest.fixture(scope="module")
def small_benchmark() -> Benchmark:
    return Benchmark.synthetic(
        SyntheticWikiConfig(seed=61, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=62, background_docs=40),
    )


@pytest.fixture(scope="module")
def snapshot(small_benchmark) -> Snapshot:
    return Snapshot.build(small_benchmark)


@pytest.fixture(scope="module")
def sharded2(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=2)
