"""The HTTP admin surface: apply_delta / compact / generation reporting."""

import asyncio
import http.client
import json
import threading

import pytest

from repro.service import (
    AsyncShardRouter,
    HttpFrontEnd,
    ShardRouter,
)
from repro.updates import UpdateCoordinator, apply_deltas_to_graph, decode_deltas

from update_helpers import assert_same_answers, rebuild_snapshot

_NEW = 9_200_000


class ServerHandle:
    """An HttpFrontEnd running on a private event-loop thread."""

    def __init__(self, front: HttpFrontEnd):
        self.front = front
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        server = asyncio.run_coroutine_threadsafe(
            front.start("127.0.0.1", 0), self.loop
        ).result(timeout=30)
        self.port = server.sockets[0].getsockname()[1]

    def request(self, method: str, path: str, payload=None):
        body = json.dumps(payload).encode() if payload is not None else None
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request(method, path, body,
                         {"Content-Type": "application/json"} if body else {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.front.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.front.service.close()


@pytest.fixture()
def stack(sharded2):
    router = ShardRouter(sharded2)
    coordinator = UpdateCoordinator(router)
    handle = ServerHandle(HttpFrontEnd(
        AsyncShardRouter(router),
        snapshot_format="v3",
        coordinator=coordinator,
    ))
    yield handle, router, coordinator
    handle.close()


def _payloads():
    return [
        {"op": "add_article", "seq": 1, "node_id": _NEW,
         "title": "Admin Added Page"},
        {"op": "add_article", "seq": 2, "node_id": _NEW + 1,
         "title": "Admin Added Friend"},
        {"op": "add_edge", "seq": 3, "source": _NEW, "target": _NEW + 1,
         "kind": "link"},
    ]


class TestApplyDelta:
    def test_apply_then_requery_then_compact_hot_swaps(
        self, stack, small_benchmark, sharded2
    ):
        handle, router, _ = stack
        status, health = handle.request("GET", "/healthz")
        assert status == 200
        assert health["snapshot_generation"] == 1
        assert health["delta_seq"] == 0
        assert health["snapshot_format"] == "v3"

        status, summary = handle.request(
            "POST", "/admin/apply_delta",
            {"deltas": _payloads(), "generation": 1},
        )
        assert status == 200
        assert summary["applied"] == 3
        assert summary["stale_workers"] == []
        assert handle.request("GET", "/healthz")[1]["delta_seq"] == 3

        oracle = apply_deltas_to_graph(
            small_benchmark.graph, decode_deltas(_payloads())
        )
        reference = ShardRouter(rebuild_snapshot(sharded2, oracle))
        status, body = handle.request(
            "POST", "/expand", {"query": "admin added page", "top_k": 5}
        )
        assert status == 200
        expected = reference.expand_query("admin added page", top_k=5)
        assert [r["doc_id"] for r in body["results"]] == \
               [r.doc_id for r in expected.results]
        assert [r["score"] for r in body["results"]] == \
               [r.score for r in expected.results]

        status, compacted = handle.request("POST", "/admin/compact", {})
        assert status == 200
        assert compacted["generation"] == 2
        assert compacted["folded_seq"] == 3
        health = handle.request("GET", "/healthz")[1]
        assert health["snapshot_generation"] == 2
        assert health["delta_seq"] == 0

        status, body = handle.request(
            "POST", "/expand", {"query": "admin added page", "top_k": 5}
        )
        assert status == 200
        assert [r["doc_id"] for r in body["results"]] == \
               [r.doc_id for r in expected.results]
        reference.close()

    def test_stale_generation_is_409_with_expected_and_got(self, stack):
        handle, _, _ = stack
        status, body = handle.request(
            "POST", "/admin/apply_delta",
            {"deltas": _payloads(), "generation": 12},
        )
        assert status == 409
        assert body["error"]["code"] == "stale_generation"
        assert body["error"]["expected"] == 1
        assert body["error"]["got"] == 12

    @pytest.mark.parametrize("payload,needle", [
        ({}, "deltas"),
        ({"deltas": "nope"}, "list"),
        ({"deltas": []}, "empty"),
        ({"deltas": [{"op": "bogus", "seq": 1}]}, "invalid_delta"),
        ({"deltas": [{"op": "remove_article", "seq": 1, "node_id": 10**7}]},
         "invalid_delta"),
        ({"deltas": [{"op": "remove_article", "seq": 1, "node_id": 1}],
          "generation": True}, "generation"),
    ])
    def test_bad_requests_are_400(self, stack, payload, needle):
        handle, _, _ = stack
        status, body = handle.request("POST", "/admin/apply_delta", payload)
        assert status == 400
        assert needle in json.dumps(body["error"])

    def test_admin_routes_404_without_a_coordinator(self, sharded2):
        handle = ServerHandle(HttpFrontEnd(
            AsyncShardRouter(ShardRouter(sharded2))
        ))
        try:
            status, _ = handle.request(
                "POST", "/admin/apply_delta", {"deltas": _payloads()}
            )
            assert status == 404
            assert handle.request("POST", "/admin/compact", {})[0] == 404
        finally:
            handle.close()

    def test_metrics_expose_generation_and_invalidations(self, stack):
        handle, _, _ = stack
        handle.request("POST", "/expand", {"query": "anything at all"})
        handle.request("POST", "/admin/apply_delta", {"deltas": _payloads()})
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
        try:
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode()
        finally:
            conn.close()
        assert "repro_snapshot_generation 1" in text
        assert "repro_delta_seq 3" in text
        assert 'repro_delta_invalidations_total{cache="link"}' in text
