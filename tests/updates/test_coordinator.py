"""UpdateCoordinator: bit-identity, idempotency, invalidation, compaction.

The acceptance bar from the live-update issue: a router serving
generation N plus an overlay answers bit-identically (doc ids AND
scores) to a router rebuilt from scratch over the delta'd graph, and so
does the compacted generation N+1 — across the sync, async, and (in
``test_worker_updates``) socket-worker paths.
"""

import asyncio

import pytest

from repro.errors import StaleGenerationError
from repro.service import AsyncShardRouter, ShardRouter, ShardedSnapshot
from repro.service.artifacts import resolve_snapshot_dir
from repro.updates import (
    Delta,
    UpdateCoordinator,
    apply_deltas_to_graph,
)

from update_helpers import (
    assert_router_matches_oracle,
    assert_same_answers,
    rebuild_snapshot,
)

_NEW = 9_100_000


def _batch(small_benchmark, start_seq=1):
    """Adds two wired-in articles, rewires an edge, sets a redirect."""
    graph = small_benchmark.graph
    articles = [a.node_id for a in graph.articles() if not a.is_redirect]
    linked = next(n for n in articles if graph.links_from(n))
    link_target = sorted(graph.links_from(linked))[0]
    loner = next(
        n for n in articles
        if not graph.redirects_of(n) and n not in (linked, link_target)
    )
    redirect_target = next(
        n for n in articles
        if n not in (loner, linked, link_target) and not graph.redirects_of(n)
    )
    seq = iter(range(start_seq, start_seq + 6))
    return [
        Delta(op="add_article", seq=next(seq), node_id=_NEW,
              title="Live Update Alpha"),
        Delta(op="add_article", seq=next(seq), node_id=_NEW + 1,
              title="Live Update Beta"),
        Delta(op="add_edge", seq=next(seq), source=_NEW, target=_NEW + 1,
              kind="link"),
        Delta(op="add_edge", seq=next(seq), source=_NEW, target=linked,
              kind="link"),
        Delta(op="remove_edge", seq=next(seq), source=linked,
              target=link_target, kind="link"),
        Delta(op="set_redirect", seq=next(seq), node_id=loner,
              target=redirect_target),
    ]


def _queries(small_benchmark):
    queries = [topic.keywords for topic in small_benchmark.topics]
    return queries + ["live update alpha", "live update beta"]


@pytest.fixture()
def router(sharded2):
    instance = ShardRouter(sharded2)
    yield instance
    instance.close()


class TestBitIdentity:
    def test_overlay_matches_from_scratch_rebuild(
        self, small_benchmark, router
    ):
        deltas = _batch(small_benchmark)
        coordinator = UpdateCoordinator(router)
        summary = coordinator.apply([d.to_payload() for d in deltas])
        assert summary["applied"] == len(deltas)
        assert summary["last_seq"] == deltas[-1].seq
        oracle = apply_deltas_to_graph(small_benchmark.graph, deltas)
        assert_router_matches_oracle(router, oracle, _queries(small_benchmark))

    def test_compacted_generation_matches_rebuild_and_overlay(
        self, small_benchmark, router
    ):
        deltas = _batch(small_benchmark)
        coordinator = UpdateCoordinator(router)
        coordinator.apply([d.to_payload() for d in deltas])
        overlay_answers = [
            router.expand_query(q, top_k=10) for q in _queries(small_benchmark)
        ]
        summary = coordinator.compact()
        assert summary["generation"] == 2
        assert summary["previous_generation"] == 1
        assert summary["folded_seq"] == deltas[-1].seq
        assert router.generation == 2
        assert coordinator.describe()["overlay_empty"]

        oracle = apply_deltas_to_graph(small_benchmark.graph, deltas)
        assert_router_matches_oracle(router, oracle, _queries(small_benchmark))
        for query, before in zip(_queries(small_benchmark), overlay_answers):
            assert_same_answers(
                router.expand_query(query, top_k=10), before, label=query
            )

    def test_async_router_sees_the_overlay(self, small_benchmark, sharded2):
        """The async front end shares the sync router's state: a delta
        published through the coordinator changes its answers too."""
        router = ShardRouter(sharded2)
        async_router = AsyncShardRouter(router)
        try:
            deltas = _batch(small_benchmark)
            UpdateCoordinator(router).apply([d.to_payload() for d in deltas])
            oracle = apply_deltas_to_graph(small_benchmark.graph, deltas)
            reference = ShardRouter(rebuild_snapshot(sharded2, oracle))

            async def all_queries():
                return [
                    await async_router.expand_query(query, top_k=10)
                    for query in _queries(small_benchmark)
                ]

            for query, mine in zip(
                _queries(small_benchmark), asyncio.run(all_queries())
            ):
                assert_same_answers(
                    mine, reference.expand_query(query, top_k=10), label=query
                )
            reference.close()
        finally:
            async_router.close()

    def test_delta_on_halo_only_node_stays_consistent(
        self, small_benchmark, router, sharded2
    ):
        """Target a node that some shard only sees as halo: the overlay
        must update core and halo copies alike."""
        halo_only = None
        for partition in sharded2.partitions:
            candidates = [
                node for node in partition.graph.node_ids()
                if partition.graph.is_article(node)
                and node not in partition.core_articles
                and not partition.graph.article(node).is_redirect
            ]
            if candidates:
                halo_only = sorted(candidates)[0]
                break
        assert halo_only is not None, "partitioning produced no halo"
        deltas = [
            Delta(op="add_article", seq=1, node_id=_NEW + 7,
                  title="Halo Companion"),
            Delta(op="add_edge", seq=2, source=_NEW + 7, target=halo_only,
                  kind="link"),
        ]
        UpdateCoordinator(router).apply([d.to_payload() for d in deltas])
        oracle = apply_deltas_to_graph(small_benchmark.graph, deltas)
        queries = _queries(small_benchmark) + [
            small_benchmark.graph.title(halo_only).lower(), "halo companion",
        ]
        assert_router_matches_oracle(router, oracle, queries)


class TestIdempotencyAndStaleness:
    def test_double_apply_is_a_no_op(self, small_benchmark, router):
        deltas = _batch(small_benchmark)
        payloads = [d.to_payload() for d in deltas]
        coordinator = UpdateCoordinator(router)
        first = coordinator.apply(payloads)
        baseline = [
            router.expand_query(q, top_k=10) for q in _queries(small_benchmark)
        ]
        second = coordinator.apply(payloads)
        assert first["applied"] == len(deltas)
        assert second["applied"] == 0
        assert second["skipped"] == len(deltas)
        assert second["last_seq"] == first["last_seq"]
        assert second["invalidated"] == {"expansion": 0, "link": 0}
        for query, before in zip(_queries(small_benchmark), baseline):
            assert_same_answers(
                router.expand_query(query, top_k=10), before, label=query
            )

    def test_stale_generation_is_rejected_without_side_effects(
        self, small_benchmark, router
    ):
        coordinator = UpdateCoordinator(router)
        payloads = [d.to_payload() for d in _batch(small_benchmark)]
        with pytest.raises(StaleGenerationError) as excinfo:
            coordinator.apply(payloads, generation=41)
        assert excinfo.value.expected == 1
        assert excinfo.value.got == 41
        assert coordinator.last_seq == 0
        assert coordinator.describe()["overlay_empty"]

        coordinator.apply(payloads, generation=1)  # the right one works
        coordinator.compact()
        with pytest.raises(StaleGenerationError):
            # a client still validating against generation 1 is refused
            coordinator.apply(
                [{"op": "remove_article", "seq": 1, "node_id": _NEW}],
                generation=1,
            )


class TestTargetedInvalidation:
    def test_far_away_delta_keeps_unrelated_entries_warm(
        self, small_benchmark, router
    ):
        """A delta whose ball misses a cached seed set must not evict
        it: adding a disconnected article invalidates nothing."""
        queries = [t.keywords for t in small_benchmark.topics[:3]]
        for query in queries:
            router.expand_query(query, top_k=10)
        coordinator = UpdateCoordinator(router)
        summary = coordinator.apply([
            {"op": "add_article", "seq": 1, "node_id": _NEW + 9,
             "title": "Distant Island"},
        ])
        assert summary["ball_size"] == 1
        assert summary["invalidated"]["expansion"] == 0
        assert summary["invalidated"]["link"] > 0  # title surface changed
        for query in queries:
            assert router.expand_query(query, top_k=10).expansion_cached, query

    def test_nearby_delta_evicts_the_touched_entry(
        self, small_benchmark, router
    ):
        query = small_benchmark.topics[0].keywords
        response = router.expand_query(query, top_k=10)
        assert response.linked
        seed = sorted(response.link.article_ids)[0]
        coordinator = UpdateCoordinator(router)
        summary = coordinator.apply([
            {"op": "add_article", "seq": 1, "node_id": _NEW + 8,
             "title": "Adjacent Newcomer"},
            {"op": "add_edge", "seq": 2, "source": _NEW + 8, "target": seed,
             "kind": "link"},
        ])
        assert summary["invalidated"]["expansion"] >= 1
        after = router.expand_query(query, top_k=10)
        assert not after.expansion_cached
        assert router.stats().delta_invalidations >= 1

    def test_pure_edge_delta_keeps_the_link_cache(
        self, small_benchmark, router
    ):
        query = small_benchmark.topics[0].keywords
        response = router.expand_query(query, top_k=10)
        seeds = sorted(response.link.article_ids)
        graph = small_benchmark.graph
        target = next(
            n for n in (a.node_id for a in graph.articles())
            if not graph.article(n).is_redirect
            and n not in graph.links_from(seeds[0]) and n != seeds[0]
            and not graph.article(seeds[0]).is_redirect
        )
        summary = UpdateCoordinator(router).apply([
            {"op": "add_edge", "seq": 1, "source": seeds[0], "target": target,
             "kind": "link"},
        ])
        assert summary["invalidated"]["link"] == 0
        assert router.expand_query(query, top_k=10).link_cached


class TestWarmup:
    def test_compact_rewarms_recent_queries_from_the_request_log(
        self, small_benchmark, router
    ):
        """The prefill satellite: queries the request log saw recently
        are re-expanded through the freshly swapped generation, so a
        delta-evicted hot entry is warm again before traffic returns."""
        from repro.obs.logs import RequestLog

        request_log = RequestLog(slow_ms=1000.0)
        coordinator = UpdateCoordinator(router, request_log=request_log)
        hot = small_benchmark.topics[0].keywords
        router.expand_query(hot, top_k=10)
        request_log.record(endpoint="/expand", latency_ms=1.0, query=hot,
                           status=200)

        response = router.expand_query(hot, top_k=10)
        assert response.expansion_cached
        seed = sorted(response.link.article_ids)[0]
        coordinator.apply([
            {"op": "add_article", "seq": 1, "node_id": _NEW + 20,
             "title": "Eviction Trigger"},
            {"op": "add_edge", "seq": 2, "source": _NEW + 20, "target": seed,
             "kind": "link"},
        ])
        summary = coordinator.compact()
        assert summary["warmed_queries"] == 1
        assert router.expand_query(hot, top_k=10).expansion_cached


class TestOnDiskLifecycle:
    def test_apply_logs_and_compact_flips_current(
        self, small_benchmark, snapshot, tmp_path
    ):
        root = tmp_path / "serving"
        sharded = ShardedSnapshot.from_snapshot(snapshot, num_shards=2)
        sharded.save(root)
        router = ShardRouter(ShardedSnapshot.load(root))
        coordinator = UpdateCoordinator(router, snapshot_dir=root)
        deltas = _batch(small_benchmark)
        coordinator.apply([d.to_payload() for d in deltas])
        assert len(coordinator.delta_log.segments()) == 1
        assert coordinator.delta_log.replay(1) == deltas

        summary = coordinator.compact()
        assert summary["saved"]
        assert summary["log_segments_dropped"] == 1
        assert (root / "gen-0002").is_dir()
        assert (root / "CURRENT").read_text().strip() == "gen-0002"
        assert resolve_snapshot_dir(root) == root / "gen-0002"
        assert coordinator.delta_log.segments() == []

        reloaded = ShardedSnapshot.load(root)
        assert reloaded.generation == 2
        fresh = ShardRouter(reloaded)
        oracle = apply_deltas_to_graph(small_benchmark.graph, deltas)
        try:
            for query in _queries(small_benchmark):
                assert_same_answers(
                    fresh.expand_query(query, top_k=10),
                    router.expand_query(query, top_k=10),
                    label=query,
                )
            assert_router_matches_oracle(
                fresh, oracle, _queries(small_benchmark)
            )
        finally:
            fresh.close()
            router.close()

    def test_stats_and_metrics_expose_the_generation(
        self, small_benchmark, router
    ):
        coordinator = UpdateCoordinator(router)
        stats = router.stats()
        assert stats.generation == 1
        assert stats.delta_seq == 0
        assert stats.as_dict()["generation"] == 1
        coordinator.apply([d.to_payload() for d in _batch(small_benchmark)])
        stats = router.stats()
        assert stats.delta_seq == 6
        coordinator.compact()
        stats = router.stats()
        assert stats.generation == 2
        assert stats.delta_seq == 0
        router.metrics.update_from_stats(stats)
        rendered = router.metrics.render()
        assert 'repro_snapshot_generation 2' in rendered
        assert 'repro_delta_seq 0' in rendered
        assert "repro_delta_invalidations_total" in rendered
