"""Delta shape checks, wire round trips, and validation rules."""

import pytest

from repro.errors import DeltaError
from repro.updates import DELTA_OPS, Delta, decode_deltas, validate_delta


def _article_ids(graph, *, redirect=None, limit=None):
    out = []
    for article in graph.articles():
        if redirect is not None and article.is_redirect != redirect:
            continue
        out.append(article.node_id)
        if limit is not None and len(out) >= limit:
            break
    return out


class TestShape:
    def test_ops_are_the_documented_five(self):
        assert DELTA_OPS == ("add_article", "remove_article", "add_edge",
                             "remove_edge", "set_redirect")

    def test_payload_round_trip(self):
        original = Delta(op="add_edge", seq=7, source=1, target=2, kind="link")
        assert Delta.from_payload(original.to_payload()) == original
        article = Delta(op="add_article", seq=8, node_id=10, title="New Page")
        assert Delta.from_payload(article.to_payload()) == article

    @pytest.mark.parametrize("kwargs", [
        {"op": "not_an_op", "seq": 1, "node_id": 1},
        {"op": "add_article", "seq": 0, "node_id": 1, "title": "X"},
        {"op": "add_article", "seq": 1, "node_id": 1},            # no title
        {"op": "add_article", "seq": 1, "node_id": 1, "title": "  "},
        {"op": "remove_article", "seq": 1},                       # no node
        {"op": "remove_article", "seq": 1, "node_id": 1, "title": "X"},
        {"op": "add_edge", "seq": 1, "source": 1, "target": 2},   # no kind
        {"op": "add_edge", "seq": 1, "source": 1, "target": 2,
         "kind": "redirect"},                                     # own op
        {"op": "set_redirect", "seq": 1, "node_id": 1},           # no target
    ])
    def test_malformed_deltas_are_rejected(self, kwargs):
        with pytest.raises(DeltaError):
            Delta(**kwargs)

    def test_unknown_payload_fields_are_rejected(self):
        with pytest.raises(DeltaError, match="unknown fields"):
            Delta.from_payload({"op": "remove_article", "seq": 1,
                                "node_id": 1, "extra": True})

    def test_decode_requires_strictly_increasing_seq(self):
        good = [{"op": "remove_article", "seq": 1, "node_id": 1},
                {"op": "remove_article", "seq": 5, "node_id": 2}]
        assert [d.seq for d in decode_deltas(good)] == [1, 5]
        with pytest.raises(DeltaError, match="increasing"):
            decode_deltas(list(reversed(good)))
        with pytest.raises(DeltaError, match="increasing"):
            decode_deltas([good[0], dict(good[0], node_id=2)])


class TestValidation:
    """Rules run against the live graph (here: the raw WikiGraph)."""

    def test_add_article_rejects_existing_node_and_title(self, small_benchmark):
        graph = small_benchmark.graph
        existing = _article_ids(graph, limit=1)[0]
        with pytest.raises(DeltaError, match="already exists"):
            validate_delta(graph, Delta(
                op="add_article", seq=1, node_id=existing, title="Whatever"))
        taken_title = graph.article(existing).title
        with pytest.raises(DeltaError, match="collides"):
            validate_delta(graph, Delta(
                op="add_article", seq=1, node_id=10**6, title=taken_title))

    def test_remove_article_rejects_redirect_sources_pointing_at_it(
        self, small_benchmark
    ):
        graph = small_benchmark.graph
        target = next(
            node for node in _article_ids(graph) if graph.redirects_of(node)
        )
        with pytest.raises(DeltaError, match="redirects pointing"):
            validate_delta(graph, Delta(
                op="remove_article", seq=1, node_id=target))

    def test_edge_endpoint_rules(self, small_benchmark):
        graph = small_benchmark.graph
        a, b = _article_ids(graph, redirect=False, limit=2)
        category = next(graph.categories()).node_id
        with pytest.raises(DeltaError, match="self-loop"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1, source=a, target=a, kind="link"))
        with pytest.raises(DeltaError, match="unknown node"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1, source=a, target=10**6, kind="link"))
        # link needs article -> article; category endpoints violate it.
        with pytest.raises(DeltaError, match="endpoint kinds"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1, source=a, target=category, kind="link"))
        with pytest.raises(DeltaError, match="endpoint kinds"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1,
                source=category, target=a, kind="belongs"))

    def test_add_existing_and_remove_missing_edges_are_rejected(
        self, small_benchmark
    ):
        graph = small_benchmark.graph
        source = next(
            node for node in _article_ids(graph, redirect=False)
            if graph.links_from(node)
        )
        target = sorted(graph.links_from(source))[0]
        with pytest.raises(DeltaError, match="already exists"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1, source=source, target=target, kind="link"))
        missing = next(
            node for node in _article_ids(graph, redirect=False)
            if node not in graph.links_from(source) and node != source
        )
        with pytest.raises(DeltaError, match="does not exist"):
            validate_delta(graph, Delta(
                op="remove_edge", seq=1, source=source, target=missing,
                kind="link"))

    def test_redirects_cannot_carry_edges_or_chain(self, small_benchmark):
        graph = small_benchmark.graph
        redirect = _article_ids(graph, redirect=True, limit=1)[0]
        plain = next(
            node for node in _article_ids(graph, redirect=False)
            if node != graph.resolve(redirect) and not graph.redirects_of(node)
        )
        with pytest.raises(DeltaError, match="cannot carry"):
            validate_delta(graph, Delta(
                op="add_edge", seq=1, source=redirect, target=plain,
                kind="link"))
        with pytest.raises(DeltaError, match="itself a redirect"):
            validate_delta(graph, Delta(
                op="set_redirect", seq=1, node_id=plain, target=redirect))
