"""Delta balls and the eviction predicates driven by them."""

from repro.updates import (
    INVALIDATION_RADIUS,
    Delta,
    OverlayGraphView,
    OverlayState,
    apply_deltas,
    changed_nodes,
    delta_ball,
    deltas_touch_titles,
    expansion_eviction_predicate,
)
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import Article, Edge, EdgeKind


def _chain_graph(length=14):
    """Articles 0..length-1 in a straight line of link edges."""
    articles = {i: Article(i, f"Chain Node {i}") for i in range(length)}
    edges = [Edge(i, i + 1, EdgeKind.LINK) for i in range(length - 1)]
    return WikiGraph(articles, {}, edges)


class TestChangedNodes:
    def test_every_named_endpoint_is_a_source(self):
        batch = [
            Delta(op="add_article", seq=1, node_id=11, title="X"),
            Delta(op="add_edge", seq=2, source=3, target=4, kind="link"),
            Delta(op="set_redirect", seq=3, node_id=7, target=8),
        ]
        assert changed_nodes(batch) == frozenset({11, 3, 4, 7, 8})

    def test_title_surface_detection(self):
        edge_only = [Delta(op="remove_edge", seq=1, source=1, target=2,
                           kind="link")]
        assert not deltas_touch_titles(edge_only)
        for op, kwargs in (
            ("add_article", {"node_id": 9, "title": "T"}),
            ("remove_article", {"node_id": 9}),
            ("set_redirect", {"node_id": 9, "target": 10}),
        ):
            assert deltas_touch_titles(edge_only + [Delta(op=op, seq=2, **kwargs)])


class TestDeltaBall:
    def test_radius_bounds_the_ball_on_a_chain(self):
        graph = _chain_graph()
        ball = delta_ball({0}, before=graph, after=graph)
        assert ball == frozenset(range(INVALIDATION_RADIUS + 1))
        assert delta_ball({0}, before=graph, after=graph, radius=2) == \
               frozenset({0, 1, 2})

    def test_ball_covers_both_old_and_new_adjacency(self):
        """A removed edge must invalidate along the OLD path and an
        added edge along the NEW one: the ball BFS walks the union."""
        graph = _chain_graph()
        state, applied = apply_deltas(graph, OverlayState(), [
            Delta(op="remove_edge", seq=1, source=2, target=3, kind="link"),
            Delta(op="add_edge", seq=2, source=2, target=9, kind="link"),
        ])
        after = OverlayGraphView(graph, state)
        ball = delta_ball(changed_nodes(applied), before=graph, after=after,
                          radius=1)
        # sources 2, 3, 9; radius-1 union adjacency reaches both the
        # severed neighbour (3 via before) and the new one (9 via after).
        assert {2, 3, 9}.issubset(ball)
        assert 1 in ball and 4 in ball and 8 in ball and 10 in ball
        assert 6 not in ball

    def test_removed_node_still_seeds_the_ball(self):
        graph = _chain_graph()
        state, applied = apply_deltas(graph, OverlayState(), [
            Delta(op="remove_edge", seq=1, source=4, target=5, kind="link"),
            Delta(op="remove_edge", seq=2, source=5, target=6, kind="link"),
            Delta(op="remove_article", seq=3, node_id=5),
        ])
        after = OverlayGraphView(graph, state)
        ball = delta_ball(changed_nodes(applied), before=graph, after=after,
                          radius=1)
        assert 5 in ball          # gone from `after`, still a source
        assert {4, 6}.issubset(ball)


class TestEvictionPredicate:
    def test_evicts_only_intersecting_seed_sets(self):
        doomed = expansion_eviction_predicate(frozenset({1, 2, 3}))
        assert doomed(frozenset({3, 50}))
        assert not doomed(frozenset({50, 51}))
        assert not doomed(frozenset())

    def test_unknown_key_shapes_evict_conservatively(self):
        doomed = expansion_eviction_predicate(frozenset({1}))
        assert doomed(42)  # not iterable: isdisjoint raises TypeError
