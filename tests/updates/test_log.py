"""Durable delta-log segments: round trips, replay, reset."""

import pytest

from repro.errors import DeltaError
from repro.updates import Delta, DeltaLog


def _batch(*seqs):
    return [
        Delta(op="add_article", seq=seq, node_id=5_000_000 + seq,
              title=f"Logged Page {seq}")
        for seq in seqs
    ]


class TestDeltaLog:
    def test_append_replay_round_trip(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(1, _batch(1, 2))
        log.append(1, _batch(3))
        assert log.replay(1) == _batch(1, 2, 3)
        assert len(log.segments()) == 2

    def test_replay_filters_by_generation(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(1, _batch(1, 2))
        log.append(2, _batch(3))
        assert log.replay(2) == _batch(3)
        assert log.replay(1) == _batch(1, 2)
        assert log.replay(7) == []

    def test_replay_deduplicates_overlapping_segments(self, tmp_path):
        """A retried append (same seqs, new segment) replays each delta
        once — the same idempotency rule the overlay applies."""
        log = DeltaLog(tmp_path)
        log.append(1, _batch(1, 2))
        log.append(1, _batch(2, 3))
        assert log.replay(1) == _batch(1, 2, 3)

    def test_reset_drops_all_segments(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(1, _batch(1))
        log.append(1, _batch(2))
        assert log.reset() == 2
        assert log.segments() == []
        assert log.replay(1) == []

    def test_empty_directory_replays_nothing(self, tmp_path):
        log = DeltaLog(tmp_path / "never-created")
        assert log.replay(1) == []
        assert log.segments() == []

    def test_corrupt_segment_is_rejected(self, tmp_path):
        log = DeltaLog(tmp_path)
        path = log.append(1, _batch(1))
        path.write_bytes(b"not a delta segment")
        with pytest.raises(DeltaError):
            log.replay(1)

    def test_segment_names_sort_by_high_seq(self, tmp_path):
        log = DeltaLog(tmp_path)
        first = log.append(1, _batch(1, 2))
        second = log.append(1, _batch(10))
        assert first.name < second.name
        assert [p.name for p in log.segments()] == \
               sorted(p.name for p in log.segments())
