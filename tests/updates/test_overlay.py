"""Overlay read path vs the independent dict-path oracle.

The contract under test: for any valid delta batch,
``materialize_graph(OverlayGraphView(base, state))`` equals
``apply_deltas_to_graph(base_graph, deltas)`` — two implementations
that share no code beyond the :class:`Delta` type itself.
"""

import random

import pytest

from repro.errors import DeltaError
from repro.updates import (
    Delta,
    OverlayGraphView,
    OverlayState,
    apply_deltas,
    apply_deltas_to_graph,
    materialize_graph,
    validate_delta,
)

from update_helpers import assert_graph_equal

_NEW_BASE = 9_000_000  # node ids far above anything synthetic graphs use


def _scripted_batch(graph):
    """One handwritten batch exercising every op at least once."""
    articles = [a.node_id for a in graph.articles() if not a.is_redirect]
    linked = next(n for n in articles if graph.links_from(n))
    link_target = sorted(graph.links_from(linked))[0]
    categorized = next(n for n in articles if graph.categories_of(n))
    category = sorted(graph.categories_of(categorized))[0]
    loner = next(
        n for n in articles
        if not graph.redirects_of(n) and n not in (linked, link_target)
    )
    redirect_target = next(
        n for n in articles
        if n not in (loner, linked, link_target) and not graph.redirects_of(n)
    )
    return [
        Delta(op="add_article", seq=1, node_id=_NEW_BASE, title="Fresh Page One"),
        Delta(op="add_article", seq=2, node_id=_NEW_BASE + 1,
              title="Fresh Page Two"),
        Delta(op="add_edge", seq=3, source=_NEW_BASE, target=_NEW_BASE + 1,
              kind="link"),
        Delta(op="add_edge", seq=4, source=_NEW_BASE, target=linked,
              kind="link"),
        Delta(op="add_edge", seq=5, source=_NEW_BASE, target=category,
              kind="belongs"),
        Delta(op="remove_edge", seq=6, source=linked, target=link_target,
              kind="link"),
        Delta(op="set_redirect", seq=7, node_id=loner, target=redirect_target),
        Delta(op="remove_edge", seq=8, source=categorized, target=category,
              kind="belongs"),
        Delta(op="remove_article", seq=9, node_id=_NEW_BASE + 1),
    ]


def _random_batch(graph, seed, count=40):
    """Valid deltas generated against the evolving overlay view."""
    rng = random.Random(seed)
    state = OverlayState()
    view = OverlayGraphView(graph, state)
    deltas = []
    seq = 0
    attempts = 0
    while len(deltas) < count and attempts < count * 60:
        attempts += 1
        articles = [a.node_id for a in view.articles()]
        categories = [c.node_id for c in view.categories()]
        op = rng.choice(
            ("add_article", "remove_article", "add_edge", "add_edge",
             "remove_edge", "set_redirect")
        )
        if op == "add_article":
            node = _NEW_BASE + 100 + attempts
            candidate = Delta(op=op, seq=seq + 1, node_id=node,
                              title=f"Random Page {seed} {attempts}")
        elif op == "remove_article":
            candidate = Delta(op=op, seq=seq + 1, node_id=rng.choice(articles))
        elif op in ("add_edge", "remove_edge"):
            kind = rng.choice(("link", "belongs", "inside"))
            if kind == "link":
                source, target = rng.choice(articles), rng.choice(articles)
            elif kind == "belongs":
                source, target = rng.choice(articles), rng.choice(categories)
            else:
                source, target = rng.choice(categories), rng.choice(categories)
            candidate = Delta(op=op, seq=seq + 1, source=source,
                              target=target, kind=kind)
        else:
            candidate = Delta(op=op, seq=seq + 1,
                              node_id=rng.choice(articles),
                              target=rng.choice(articles))
        try:
            validate_delta(view, candidate)
        except DeltaError:
            continue
        state.apply_delta(view, candidate)
        deltas.append(candidate)
        seq += 1
    assert len(deltas) == count, "generator starved — loosen the attempt cap"
    return deltas


class TestOracleEquivalence:
    def test_scripted_batch_matches_oracle(self, small_benchmark):
        graph = small_benchmark.graph
        deltas = _scripted_batch(graph)
        state, applied = apply_deltas(graph, OverlayState(), deltas)
        assert applied == deltas
        live = materialize_graph(OverlayGraphView(graph, state))
        oracle = apply_deltas_to_graph(graph, deltas)
        assert_graph_equal(live, oracle)

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_random_batches_match_oracle(self, small_benchmark, seed):
        graph = small_benchmark.graph
        deltas = _random_batch(graph, seed)
        state, applied = apply_deltas(graph, OverlayState(), deltas)
        assert applied == deltas
        live = materialize_graph(OverlayGraphView(graph, state))
        oracle = apply_deltas_to_graph(graph, deltas)
        assert_graph_equal(live, oracle)

    def test_incremental_equals_one_shot(self, small_benchmark):
        """Applying delta-by-delta lands on the same state as one batch."""
        graph = small_benchmark.graph
        deltas = _scripted_batch(graph)
        one_shot, _ = apply_deltas(graph, OverlayState(), deltas)
        stepped = OverlayState()
        for delta in deltas:
            stepped, _ = apply_deltas(graph, stepped, [delta])
        assert_graph_equal(
            materialize_graph(OverlayGraphView(graph, stepped)),
            materialize_graph(OverlayGraphView(graph, one_shot)),
        )


class TestIdempotencyAndAtomicity:
    def test_replay_below_last_seq_is_skipped(self, small_benchmark):
        graph = small_benchmark.graph
        deltas = _scripted_batch(graph)
        state, applied = apply_deltas(graph, OverlayState(), deltas)
        assert len(applied) == len(deltas)
        again, reapplied = apply_deltas(graph, state, deltas)
        assert reapplied == []
        assert again.last_seq == state.last_seq
        assert_graph_equal(
            materialize_graph(OverlayGraphView(graph, again)),
            materialize_graph(OverlayGraphView(graph, state)),
        )

    def test_failed_batch_leaves_state_untouched(self, small_benchmark):
        graph = small_benchmark.graph
        state = OverlayState()
        bad = [
            Delta(op="add_article", seq=1, node_id=_NEW_BASE, title="Okay"),
            Delta(op="add_edge", seq=2, source=_NEW_BASE, target=10**7,
                  kind="link"),  # unknown target: whole batch dies
        ]
        with pytest.raises(DeltaError):
            apply_deltas(graph, state, bad)
        assert state.is_empty
        assert _NEW_BASE not in OverlayGraphView(graph, state)

    def test_remove_then_re_add_yields_edgeless_article(self, small_benchmark):
        graph = small_benchmark.graph
        victim = next(
            a.node_id for a in graph.articles()
            if not a.is_redirect and not graph.redirects_of(a.node_id)
            and graph.links_from(a.node_id)
        )
        deltas = [
            Delta(op="remove_article", seq=1, node_id=victim),
            Delta(op="add_article", seq=2, node_id=victim, title="Reborn Page"),
        ]
        state, _ = apply_deltas(graph, OverlayState(), deltas)
        view = OverlayGraphView(graph, state)
        assert victim in view
        assert view.title(victim) == "Reborn Page"
        assert view.links_from(victim) == frozenset()
        assert view.links_to(victim) == frozenset()
        assert view.categories_of(victim) == frozenset()
        assert view.undirected_neighbors(victim) == frozenset()
        assert_graph_equal(
            materialize_graph(view), apply_deltas_to_graph(graph, deltas)
        )


class TestViewFastPaths:
    def test_empty_overlay_counts_match_base(self, small_benchmark):
        graph = small_benchmark.graph
        view = OverlayGraphView(graph, OverlayState())
        assert view.num_articles == graph.num_articles
        assert view.num_categories == graph.num_categories
        assert view.num_edges == graph.num_edges
        assert len(view) == len(graph)

    def test_untouched_subgraph_delegates_to_base(self, small_benchmark):
        """Seed sets disjoint from the overlay keep the base's (compact)
        induced-subgraph implementation — the empty-overlay hot path."""
        graph = small_benchmark.graph
        state, _ = apply_deltas(graph, OverlayState(), [
            Delta(op="add_article", seq=1, node_id=_NEW_BASE, title="Far Away"),
        ])
        view = OverlayGraphView(graph, state)
        keep = sorted(a.node_id for a in graph.articles())[:5]
        mine = view.induced_subgraph(keep)
        base = graph.induced_subgraph(keep)
        assert type(mine) is type(base)
        assert sorted(mine.node_ids()) == sorted(base.node_ids())

    def test_touched_subgraph_sees_overlay_edges(self, small_benchmark):
        graph = small_benchmark.graph
        articles = [a.node_id for a in graph.articles() if not a.is_redirect]
        anchor = next(n for n in articles if graph.links_from(n))
        state, _ = apply_deltas(graph, OverlayState(), [
            Delta(op="add_article", seq=1, node_id=_NEW_BASE, title="Near By"),
            Delta(op="add_edge", seq=2, source=_NEW_BASE, target=anchor,
                  kind="link"),
        ])
        view = OverlayGraphView(graph, state)
        sub = view.induced_subgraph([anchor, _NEW_BASE])
        assert _NEW_BASE in sub
        assert anchor in sub.links_from(_NEW_BASE)
