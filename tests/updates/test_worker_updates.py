"""Live updates on the out-of-process serving path.

Three layers again, mirroring the fault suite: the
:class:`ShardWorkerUpdater` alone, a real :class:`ShardWorkerServer` on
a loopback socket in this process (wire-level ``apply_delta``), and
supervised worker subprocesses behind the full coordinator (fan-out,
log replay on restart, rolling reload across a compaction).
"""

import asyncio
import socket as socketlib

import pytest

from repro.errors import StaleGenerationError
from repro.service import (
    AsyncShardRouter,
    ShardCallPolicy,
    ShardRouter,
    ShardSupervisor,
    ShardWorkerServer,
    ShardedSnapshot,
    SocketShardAdapter,
    make_shard_worker,
)
from repro.service import wire
from repro.service.wire import SHARD_PROTOCOL_VERSION
from repro.updates import (
    Delta,
    DeltaLog,
    ShardWorkerUpdater,
    UpdateCoordinator,
    apply_deltas_to_graph,
)

from update_helpers import assert_same_answers, rebuild_snapshot

_NEW = 9_300_000


def _payloads(seed_article):
    return [
        {"op": "add_article", "seq": 1, "node_id": _NEW,
         "title": "Socket Update Page"},
        {"op": "add_edge", "seq": 2, "source": _NEW, "target": seed_article,
         "kind": "link"},
    ]


@pytest.fixture(scope="module")
def sharded1(snapshot) -> ShardedSnapshot:
    return ShardedSnapshot.from_snapshot(snapshot, num_shards=1).frozen()


def _anchor(small_benchmark):
    graph = small_benchmark.graph
    return next(
        a.node_id for a in graph.articles()
        if not a.is_redirect and graph.links_from(a.node_id)
    )


class TestShardWorkerUpdater:
    def test_worker_overlay_matches_router_overlay(
        self, small_benchmark, sharded1
    ):
        """A worker applying a batch itself answers like a router whose
        coordinator published the same batch."""
        anchor = _anchor(small_benchmark)
        worker = make_shard_worker(sharded1, 0)
        updater = ShardWorkerUpdater(worker, sharded1.compact_graph)
        summary = updater.apply_payloads(_payloads(anchor))
        assert summary["applied"] == 2
        assert updater.last_seq == 2

        router = ShardRouter(sharded1)
        UpdateCoordinator(router).apply(_payloads(anchor))
        seeds = frozenset({anchor, _NEW})
        mine, _cached = worker.expand_seeds(seeds)
        reference, _cached = router.workers[0].expand_seeds(seeds)
        assert mine.article_ids == reference.article_ids
        assert mine.titles == reference.titles
        router.close()

    def test_replay_is_idempotent_and_stale_generation_refused(
        self, small_benchmark, sharded1
    ):
        anchor = _anchor(small_benchmark)
        worker = make_shard_worker(sharded1, 0)
        updater = ShardWorkerUpdater(worker, sharded1.compact_graph)
        assert updater.apply_payloads(_payloads(anchor))["applied"] == 2
        again = updater.apply_payloads(_payloads(anchor))
        assert again["applied"] == 0
        assert again["invalidated"] == 0
        with pytest.raises(StaleGenerationError):
            updater.apply_payloads(_payloads(anchor), generation=3)


def _wire_call(port, frame):
    with socketlib.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.settimeout(30)
        wire.send_frame(sock, {
            "call": "hello", "protocol": SHARD_PROTOCOL_VERSION,
        })
        hello = wire.recv_frame(sock)
        wire.send_frame(sock, frame)
        return hello, wire.recv_frame(sock)


class TestWireApplyDelta:
    def _serve(self, sharded1, fn):
        worker = make_shard_worker(sharded1, 0)
        updater = ShardWorkerUpdater(worker, sharded1.compact_graph)

        async def go():
            server = ShardWorkerServer(worker, 0, updater=updater)
            await server.start("127.0.0.1", 0)
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, fn, server.port
                )
            finally:
                await server.stop()

        return asyncio.run(go()), worker, updater

    def test_hello_reports_generation_and_wire_apply_works(
        self, small_benchmark, sharded1
    ):
        anchor = _anchor(small_benchmark)

        def exercise(port):
            hello, response = _wire_call(port, {
                "call": "apply_delta",
                "protocol": SHARD_PROTOCOL_VERSION,
                "generation": 1,
                "deltas": _payloads(anchor),
            })
            return hello, response

        (hello, response), _worker, updater = self._serve(sharded1, exercise)
        assert hello["ok"]
        assert hello["protocol"] == SHARD_PROTOCOL_VERSION
        assert hello["generation"] == 1
        assert hello["delta_seq"] == 0
        assert response.get("error") is None
        assert response["result"]["applied"] == 2
        assert updater.last_seq == 2

    def test_wire_stale_generation_returns_an_error_frame(self, sharded1):
        def exercise(port):
            return _wire_call(port, {
                "call": "apply_delta",
                "protocol": SHARD_PROTOCOL_VERSION,
                "generation": 9,
                "deltas": [{"op": "remove_article", "seq": 1, "node_id": 1}],
            })

        (_hello, response), _worker, updater = self._serve(sharded1, exercise)
        assert response["error"] is not None
        assert "generation" in response["error"]["message"]
        assert updater.last_seq == 0

    def test_server_without_updater_rejects_apply_delta(self, sharded1):
        worker = make_shard_worker(sharded1, 0)

        async def go():
            server = ShardWorkerServer(worker, 0)
            await server.start("127.0.0.1", 0)
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, _wire_call, server.port, {
                        "call": "apply_delta",
                        "protocol": SHARD_PROTOCOL_VERSION,
                        "deltas": [],
                    }
                )
            finally:
                await server.stop()

        hello, response = asyncio.run(go())
        assert "generation" not in hello
        assert response["error"] is not None


class TestSupervisedLiveUpdates:
    """Real worker subprocesses: fan-out, replay, rolling reload."""

    def test_fan_out_replay_and_compaction_reload(
        self, small_benchmark, snapshot, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("live-serving")
        sharded = ShardedSnapshot.from_snapshot(snapshot, num_shards=2)
        sharded.save(root)
        anchor = _anchor(small_benchmark)
        oracle = apply_deltas_to_graph(
            small_benchmark.graph,
            [Delta.from_payload(p) for p in _payloads(anchor)],
        )
        queries = [t.keywords for t in small_benchmark.topics[:4]]
        queries.append("socket update page")

        supervisor = ShardSupervisor(str(root), 2)
        supervisor.start(timeout_s=120.0)
        router = ShardRouter(sharded)
        async_router = AsyncShardRouter(router, supervisor=supervisor)
        coordinator = UpdateCoordinator(
            router, snapshot_dir=root, supervisor=supervisor
        )
        reference = ShardRouter(rebuild_snapshot(sharded, oracle))

        def ask_all():
            async def go():
                return [
                    await async_router.expand_query(query, top_k=10)
                    for query in queries
                ]
            return asyncio.run(go())

        try:
            # Live fan-out: every worker took the batch over the wire.
            summary = coordinator.apply(_payloads(anchor))
            assert summary["stale_workers"] == []
            for query, mine in zip(queries, ask_all()):
                assert_same_answers(
                    mine, reference.expand_query(query, top_k=10), label=query
                )

            # Replay: freshly exec'd workers fold the durable log back in.
            assert len(DeltaLog(root).segments()) == 1
            supervisor.reload(timeout_s=120.0)
            assert [w["state"] for w in supervisor.describe()] == ["up", "up"]
            for query, mine in zip(queries, ask_all()):
                assert_same_answers(
                    mine, reference.expand_query(query, top_k=10), label=query
                )

            # Compaction: CURRENT flips, workers rolling-restart onto
            # generation 2, answers stay bit-identical.
            pids_before = [w["pid"] for w in supervisor.describe()]
            compacted = coordinator.compact()
            assert compacted["generation"] == 2
            assert (root / "CURRENT").read_text().strip() == "gen-0002"
            pids_after = [w["pid"] for w in supervisor.describe()]
            assert set(pids_before).isdisjoint(pids_after)
            assert supervisor.restarts_total == 0  # reloads burn no budget

            host, port = supervisor.endpoint(0)
            hello, _ = _wire_call(port, {
                "call": "hello", "protocol": SHARD_PROTOCOL_VERSION,
            })
            assert hello["generation"] == 2
            assert hello["delta_seq"] == 0
            for query, mine in zip(queries, ask_all()):
                assert_same_answers(
                    mine, reference.expand_query(query, top_k=10), label=query
                )
        finally:
            reference.close()
            async_router.close()
            supervisor.stop()
