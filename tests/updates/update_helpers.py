"""Assertion helpers shared by the live-update tests.

The bit-identity tests all reduce to the same comparison: a stack that
applied deltas *live* (overlay, compaction, worker fan-out) against a
stack rebuilt *from scratch* over the oracle graph produced by
``apply_deltas_to_graph``.  The helpers here build that reference stack
and perform the deep comparisons.
"""

from repro.linking.linker import EntityLinker
from repro.service import ShardRouter, ShardedSnapshot
from repro.wiki.partition import GraphPartition, partition_graph


def assert_graph_equal(left, right) -> None:
    """Two graphs agree node-for-node and edge-for-edge."""
    left_articles = {a.node_id: a for a in left.articles()}
    right_articles = {a.node_id: a for a in right.articles()}
    assert set(left_articles) == set(right_articles)
    for node_id, article in left_articles.items():
        other = right_articles[node_id]
        assert article.title == other.title, node_id
        assert article.is_redirect == other.is_redirect, node_id
    assert {c.node_id: c.name for c in left.categories()} == \
           {c.node_id: c.name for c in right.categories()}
    for node_id in left_articles:
        assert left.links_from(node_id) == right.links_from(node_id), node_id
        assert left.links_to(node_id) == right.links_to(node_id), node_id
        assert left.categories_of(node_id) == right.categories_of(node_id), node_id
        assert left.redirect_target(node_id) == right.redirect_target(node_id)
        assert left.redirects_of(node_id) == right.redirects_of(node_id), node_id
    for category in left.categories():
        node_id = category.node_id
        assert left.members_of(node_id) == right.members_of(node_id), node_id
        assert left.parents_of(node_id) == right.parents_of(node_id), node_id
        assert left.children_of(node_id) == right.children_of(node_id), node_id
    assert left.num_edges == right.num_edges
    for node_id in left_articles:
        assert frozenset(left.undirected_neighbors(node_id)) == \
               frozenset(right.undirected_neighbors(node_id)), node_id


def rebuild_snapshot(old: ShardedSnapshot, graph, generation: int = 1):
    """A from-scratch ShardedSnapshot over ``graph``: the oracle.

    Index segments, doc names and mu carry over untouched — deltas only
    ever change the graph — while partitions and the linker vocabulary
    are rebuilt exactly the way ``Snapshot.build`` + ``from_snapshot``
    would have built them for ``graph``.
    """
    num_shards = old.num_shards
    if num_shards == 1:
        partitions = (GraphPartition(
            shard_id=0,
            num_shards=1,
            graph=graph,
            core_articles=frozenset(a.node_id for a in graph.articles()),
            core_categories=frozenset(c.node_id for c in graph.categories()),
        ),)
    else:
        partitions = tuple(partition_graph(graph, num_shards))
    linker = EntityLinker(graph)
    return ShardedSnapshot(
        partitions=partitions,
        segments=old.segments,
        title_index=linker.vocabulary(),
        doc_names=dict(old.doc_names),
        mu=old.mu,
        generation=generation,
    ).frozen()


def assert_same_answers(mine, reference, label="") -> None:
    """Doc ids AND scores bit-identical, plus the expansion surface."""
    assert mine.link.article_ids == reference.link.article_ids, label
    assert mine.expansion.article_ids == reference.expansion.article_ids, label
    assert [(r.doc_id, r.score) for r in mine.results] == \
           [(r.doc_id, r.score) for r in reference.results], label


def assert_router_matches_oracle(router, oracle_graph, queries) -> None:
    """``router``'s live answers equal a from-scratch rebuild's."""
    reference = ShardRouter(rebuild_snapshot(router.snapshot, oracle_graph))
    try:
        for query in queries:
            assert_same_answers(
                router.expand_query(query, top_k=10),
                reference.expand_query(query, top_k=10),
                label=query,
            )
    finally:
        reference.close()
