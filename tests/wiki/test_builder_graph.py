"""Unit tests for WikiGraphBuilder validation and WikiGraph adjacency."""

import pytest

from repro.errors import DuplicateNodeError, SchemaError, UnknownNodeError
from repro.wiki import EdgeKind, NodeKind, WikiGraphBuilder


@pytest.fixture
def venice_builder():
    """A small Venice-themed graph mirroring the paper's Figure 4 examples."""
    builder = WikiGraphBuilder()
    venice = builder.add_article("Venice")
    cannaregio = builder.add_article("Cannaregio")
    canal = builder.add_article("Grand Canal (Venice)")
    palazzo = builder.add_article("Palazzo Bembo")
    sighs = builder.add_article("Bridge of Sighs")
    attractions = builder.add_category("Visitor attractions in Venice")
    canals = builder.add_category("Canals in Italy")
    sestieri = builder.add_category("Sestieri of Venice")
    for article in (venice, cannaregio, canal, palazzo, sighs):
        builder.add_belongs(article, attractions)
    builder.add_belongs(canal, canals)
    builder.add_belongs(cannaregio, sestieri)
    builder.add_inside(sestieri, attractions)
    # 2-cycle: venice <-> cannaregio
    builder.add_link(venice, cannaregio)
    builder.add_link(cannaregio, venice)
    # 3-cycle: venice -> canal -> palazzo -> venice
    builder.add_link(venice, canal)
    builder.add_link(canal, palazzo)
    builder.add_link(palazzo, venice)
    builder.add_link(venice, sighs)
    return builder, {
        "venice": venice,
        "cannaregio": cannaregio,
        "canal": canal,
        "palazzo": palazzo,
        "sighs": sighs,
        "attractions": attractions,
        "canals": canals,
        "sestieri": sestieri,
    }


class TestBuilderValidation:
    def test_duplicate_article_title_rejected(self):
        builder = WikiGraphBuilder()
        builder.add_article("Venice")
        with pytest.raises(DuplicateNodeError):
            builder.add_article("venice")  # normalised collision

    def test_duplicate_category_rejected(self):
        builder = WikiGraphBuilder()
        builder.add_category("Canals")
        with pytest.raises(DuplicateNodeError):
            builder.add_category("canals")

    def test_same_title_allowed_across_namespaces(self):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("Venice")
        builder.add_category("Venice")  # article and category may share names
        assert builder.num_nodes == 2

    def test_empty_title_rejected(self):
        with pytest.raises(SchemaError):
            WikiGraphBuilder().add_article("   ")

    def test_empty_category_rejected(self):
        with pytest.raises(SchemaError):
            WikiGraphBuilder().add_category("")

    def test_self_link_rejected(self):
        builder = WikiGraphBuilder(strict=False)
        venice = builder.add_article("Venice")
        with pytest.raises(SchemaError):
            builder.add_link(venice, venice)

    def test_link_to_category_rejected(self):
        builder = WikiGraphBuilder(strict=False)
        venice = builder.add_article("Venice")
        cat = builder.add_category("Canals")
        with pytest.raises(SchemaError):
            builder.add_link(venice, cat)

    def test_belongs_to_article_rejected(self):
        builder = WikiGraphBuilder(strict=False)
        venice = builder.add_article("Venice")
        rome = builder.add_article("Rome")
        with pytest.raises(SchemaError):
            builder.add_belongs(venice, rome)

    def test_inside_self_rejected(self):
        builder = WikiGraphBuilder(strict=False)
        cat = builder.add_category("Canals")
        with pytest.raises(SchemaError):
            builder.add_inside(cat, cat)

    def test_unknown_node_in_edge(self):
        builder = WikiGraphBuilder(strict=False)
        venice = builder.add_article("Venice")
        with pytest.raises(UnknownNodeError):
            builder.add_link(venice, 999)

    def test_strict_requires_category_membership(self):
        builder = WikiGraphBuilder()
        builder.add_article("Orphan")
        with pytest.raises(SchemaError, match="belongs to no category"):
            builder.build()

    def test_non_strict_allows_uncategorised(self):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("Orphan")
        assert builder.build().num_articles == 1

    def test_redirect_needs_flag(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("A")
        b = builder.add_article("B")
        with pytest.raises(SchemaError, match="not created as a redirect"):
            builder.add_redirect(a, b)

    def test_redirect_must_have_target(self):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("Alias", is_redirect=True)
        with pytest.raises(SchemaError, match="no redirect target"):
            builder.build()

    def test_redirect_single_target(self):
        builder = WikiGraphBuilder(strict=False)
        alias = builder.add_article("Alias", is_redirect=True)
        a = builder.add_article("A")
        b = builder.add_article("B")
        builder.add_redirect(alias, a)
        with pytest.raises(SchemaError, match="already has a target"):
            builder.add_redirect(alias, b)

    def test_redirect_with_own_links_rejected(self):
        builder = WikiGraphBuilder(strict=False)
        alias = builder.add_article("Alias", is_redirect=True)
        a = builder.add_article("A")
        builder.add_redirect(alias, a)
        builder.add_link(alias, a)
        with pytest.raises(SchemaError, match="must not have"):
            builder.build()

    def test_duplicate_edge_returns_false(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("A")
        b = builder.add_article("B")
        assert builder.add_link(a, b) is True
        assert builder.add_link(a, b) is False

    def test_link_titles_helper(self):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("A")
        builder.add_article("B")
        assert builder.link_titles("A", "B") is True
        with pytest.raises(UnknownNodeError):
            builder.link_titles("A", "Nope")

    def test_builder_reusable_after_build(self, venice_builder):
        builder, _ = venice_builder
        first = builder.build()
        second = builder.build()
        assert first is not second
        assert first.num_nodes == second.num_nodes


class TestGraphAccessors:
    def test_counts(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert graph.num_articles == 5
        assert graph.num_categories == 3
        assert graph.num_nodes == 8
        assert len(graph) == 8

    def test_contains(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert ids["venice"] in graph
        assert 12345 not in graph

    def test_node_lookup_and_kind(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert graph.kind(ids["venice"]) is NodeKind.ARTICLE
        assert graph.kind(ids["canals"]) is NodeKind.CATEGORY
        with pytest.raises(UnknownNodeError):
            graph.kind(999)

    def test_article_category_accessors_raise_on_wrong_kind(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        with pytest.raises(UnknownNodeError):
            graph.article(ids["canals"])
        with pytest.raises(UnknownNodeError):
            graph.category(ids["venice"])

    def test_title_lookup(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        found = graph.article_by_title("grand canal (venice)")
        assert found is not None and found.node_id == ids["canal"]
        assert graph.article_by_title("nonexistent") is None
        assert graph.category_by_name("canals in italy").node_id == ids["canals"]

    def test_links(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert ids["cannaregio"] in graph.links_from(ids["venice"])
        assert ids["venice"] in graph.links_to(ids["cannaregio"])

    def test_categories_of(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert graph.categories_of(ids["canal"]) == frozenset(
            {ids["attractions"], ids["canals"]}
        )

    def test_members_of(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert ids["canal"] in graph.members_of(ids["canals"])

    def test_category_hierarchy(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert graph.parents_of(ids["sestieri"]) == frozenset({ids["attractions"]})
        assert graph.children_of(ids["attractions"]) == frozenset({ids["sestieri"]})

    def test_undirected_neighbors_merges_directions(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        neighbors = graph.undirected_neighbors(ids["venice"])
        # linked out, linked in (palazzo -> venice), and its category
        assert ids["cannaregio"] in neighbors
        assert ids["palazzo"] in neighbors
        assert ids["attractions"] in neighbors

    def test_has_edge_symmetric(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        assert graph.has_edge(ids["palazzo"], ids["venice"])
        assert graph.has_edge(ids["venice"], ids["palazzo"])
        assert not graph.has_edge(ids["palazzo"], ids["cannaregio"])

    def test_degree(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        # canal: venice (in), palazzo (out), attractions, canals
        assert graph.degree(ids["canal"]) == 4

    def test_repr(self, venice_builder):
        builder, _ = venice_builder
        assert "WikiGraph(" in repr(builder.build())


class TestRedirects:
    @pytest.fixture
    def graph_with_redirects(self):
        builder = WikiGraphBuilder(strict=False)
        main = builder.add_article("Mekhitarist Order")
        alias = builder.add_article("Mechitarists", is_redirect=True)
        builder.add_redirect(alias, main)
        return builder.build(), main, alias

    def test_redirect_target(self, graph_with_redirects):
        graph, main, alias = graph_with_redirects
        assert graph.redirect_target(alias) == main
        assert graph.redirect_target(main) is None

    def test_redirects_of(self, graph_with_redirects):
        graph, main, alias = graph_with_redirects
        assert graph.redirects_of(main) == frozenset({alias})

    def test_resolve_follows_chain(self):
        builder = WikiGraphBuilder(strict=False)
        main = builder.add_article("Main")
        mid = builder.add_article("Mid", is_redirect=True)
        leaf = builder.add_article("Leaf", is_redirect=True)
        builder.add_redirect(leaf, mid)
        builder.add_redirect(mid, main)
        graph = builder.build()
        assert graph.resolve(leaf) == main
        assert graph.resolve(main) == main

    def test_redirects_excluded_from_undirected_view(self, graph_with_redirects):
        graph, main, alias = graph_with_redirects
        assert alias not in graph.undirected_neighbors(main)
        nx_graph = graph.to_networkx()
        assert not nx_graph.has_edge(main, alias)
        nx_with = graph.to_networkx(include_redirects=True)
        assert nx_with.has_edge(main, alias)

    def test_main_articles_excludes_redirects(self, graph_with_redirects):
        graph, main, alias = graph_with_redirects
        mains = {a.node_id for a in graph.main_articles()}
        assert mains == {main}
        assert graph.num_main_articles == 1


class TestSubgraph:
    def test_induced_subgraph_keeps_internal_edges(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        sub = graph.induced_subgraph([ids["venice"], ids["cannaregio"], ids["attractions"]])
        assert sub.num_nodes == 3
        assert sub.has_edge(ids["venice"], ids["cannaregio"])
        assert sub.categories_of(ids["venice"]) == frozenset({ids["attractions"]})
        # canal was dropped, so its link from venice is gone
        assert ids["canal"] not in sub

    def test_induced_subgraph_unknown_node(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        with pytest.raises(UnknownNodeError):
            graph.induced_subgraph([ids["venice"], 777])

    def test_to_networkx_attributes(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        nx_graph = graph.to_networkx()
        assert nx_graph.nodes[ids["venice"]]["kind"] == "article"
        assert nx_graph.nodes[ids["canals"]]["kind"] == "category"
        assert nx_graph.nodes[ids["canal"]]["title"] == "Grand Canal (Venice)"

    def test_edges_iterator_covers_all_kinds(self, venice_builder):
        builder, ids = venice_builder
        graph = builder.build()
        kinds = {e.kind for e in graph.edges()}
        assert EdgeKind.LINK in kinds
        assert EdgeKind.BELONGS in kinds
        assert EdgeKind.INSIDE in kinds
