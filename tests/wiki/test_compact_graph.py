"""CompactGraphView: exact adjacency/subgraph equivalence + blob failures."""

import pytest

from repro.core.cycles import CycleFinder
from repro.core.features import compute_features, count_edges
from repro.errors import AnalysisError, UnknownNodeError
from repro.wiki import (
    CompactGraphView,
    PartitionedGraphView,
    SyntheticWikiConfig,
    generate_wiki,
    partition_graph,
)


@pytest.fixture(scope="module")
def graph():
    return generate_wiki(SyntheticWikiConfig(
        seed=17, num_domains=4, background_articles=60, background_categories=12,
    )).graph


@pytest.fixture(scope="module")
def compact(graph) -> CompactGraphView:
    return CompactGraphView.from_graph(graph)


class TestAdjacencyEquivalence:
    def test_counts_match(self, graph, compact):
        assert compact.num_articles == graph.num_articles
        assert compact.num_main_articles == graph.num_main_articles
        assert compact.num_categories == graph.num_categories
        assert compact.num_nodes == graph.num_nodes
        assert compact.num_edges == graph.num_edges

    def test_every_node_answers_identically(self, graph, compact):
        for node_id in graph.node_ids():
            assert node_id in compact
            assert compact.title(node_id) == graph.title(node_id)
            assert compact.is_article(node_id) == graph.is_article(node_id)
            assert compact.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)
            assert compact.degree(node_id) == graph.degree(node_id)
            if graph.is_article(node_id):
                assert compact.links_from(node_id) == graph.links_from(node_id)
                assert compact.links_to(node_id) == graph.links_to(node_id)
                assert compact.categories_of(node_id) == graph.categories_of(node_id)
                assert compact.redirect_target(node_id) == \
                    graph.redirect_target(node_id)
                assert compact.redirects_of(node_id) == graph.redirects_of(node_id)
                assert compact.resolve(node_id) == graph.resolve(node_id)
            else:
                assert compact.members_of(node_id) == graph.members_of(node_id)
                assert compact.parents_of(node_id) == graph.parents_of(node_id)
                assert compact.children_of(node_id) == graph.children_of(node_id)

    def test_unknown_node_answers_like_absent(self, compact):
        assert 10**9 not in compact
        assert compact.undirected_neighbors(10**9) == frozenset()
        assert compact.links_from(10**9) == frozenset()
        with pytest.raises(UnknownNodeError):
            compact.title(10**9)

    def test_partitioned_view_freezes_identically(self, graph, compact):
        view = PartitionedGraphView(partition_graph(graph, 3))
        from_view = CompactGraphView.from_graph(view)
        assert from_view.num_edges == compact.num_edges
        for node_id in graph.node_ids():
            assert from_view.undirected_neighbors(node_id) == \
                compact.undirected_neighbors(node_id)

    def test_freezing_a_compact_view_is_identity(self, compact):
        assert CompactGraphView.from_graph(compact) is compact


class TestInducedSubgraph:
    def _some_ball(self, graph, size=60):
        # A deterministic connected-ish chunk: BFS from the lowest id.
        start = min(graph.node_ids())
        seen = [start]
        members = {start}
        for node in seen:
            if len(members) >= size:
                break
            for neighbor in sorted(graph.undirected_neighbors(node)):
                if neighbor not in members:
                    members.add(neighbor)
                    seen.append(neighbor)
                    if len(members) >= size:
                        break
        return members

    def test_subgraph_adjacency_matches_materialised(self, graph, compact):
        keep = self._some_ball(graph)
        reference = graph.induced_subgraph(keep)
        mine = compact.induced_subgraph(keep)
        for node_id in keep:
            assert mine.undirected_neighbors(node_id) == \
                reference.undirected_neighbors(node_id)
            assert mine.is_article(node_id) == reference.is_article(node_id)
            if reference.is_article(node_id):
                assert mine.links_from(node_id) == reference.links_from(node_id)
                assert mine.categories_of(node_id) == \
                    reference.categories_of(node_id)
            else:
                assert mine.parents_of(node_id) == reference.parents_of(node_id)
                assert mine.children_of(node_id) == reference.children_of(node_id)

    def test_cycles_and_features_match_materialised(self, graph, compact):
        keep = self._some_ball(graph)
        reference = graph.induced_subgraph(keep)
        mine = compact.induced_subgraph(keep)
        ref_cycles = CycleFinder(reference).find()
        my_cycles = CycleFinder(mine).find()
        assert my_cycles == ref_cycles
        for cycle in ref_cycles:
            assert compute_features(mine, cycle) == \
                compute_features(reference, cycle)

    def test_fused_edge_count_equals_generic(self, graph, compact):
        keep = self._some_ball(graph)
        reference = graph.induced_subgraph(keep)
        mine = compact.induced_subgraph(keep)
        for cycle in CycleFinder(reference).find():
            assert mine.count_edges_among(cycle.nodes) == \
                count_edges(reference, cycle.nodes)

    def test_nested_subgraph_restricts_further(self, graph, compact):
        keep = self._some_ball(graph)
        inner_keep = set(sorted(keep)[: len(keep) // 2])
        mine = compact.induced_subgraph(keep).induced_subgraph(inner_keep)
        reference = graph.induced_subgraph(keep).induced_subgraph(inner_keep)
        for node_id in inner_keep:
            assert mine.undirected_neighbors(node_id) == \
                reference.undirected_neighbors(node_id)

    def test_unknown_node_rejected(self, compact):
        with pytest.raises(UnknownNodeError):
            compact.induced_subgraph({10**9})


class TestBlob:
    def test_round_trip_in_memory(self, graph, compact):
        again = CompactGraphView.from_blob(compact.to_blob())
        assert again.num_edges == graph.num_edges
        for node_id in graph.node_ids():
            assert again.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)
            assert again.title(node_id) == graph.title(node_id)

    def test_mmap_round_trip_survives_reopen(self, graph, compact, tmp_path):
        path = tmp_path / "graph.bin"
        compact.save(path)
        reloaded = CompactGraphView.load(path)
        sample = sorted(graph.node_ids())[:25]
        for node_id in sample:
            assert reloaded.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)
        again = CompactGraphView.load(path)
        assert again.num_nodes == reloaded.num_nodes

    def test_truncated_blob_rejected(self, compact):
        blob = compact.to_blob()
        for cut in (4, 16, len(blob) // 2, len(blob) - 2):
            with pytest.raises(AnalysisError):
                CompactGraphView.from_blob(blob[:cut])

    def test_foreign_magic_rejected(self, compact):
        blob = bytearray(compact.to_blob())
        blob[:8] = b"NOTMAGIC"
        with pytest.raises(AnalysisError, match="magic"):
            CompactGraphView.from_blob(bytes(blob))
