"""Round-trip and error tests for the JSONL graph dump format."""

import json

import pytest

from repro.errors import DumpFormatError
from repro.wiki import (
    WikiGraphBuilder,
    dumps_graph,
    generate_wiki,
    loads_graph,
    read_graph,
    write_graph,
)
from repro.wiki.synthetic import SyntheticWikiConfig


@pytest.fixture
def small_graph():
    builder = WikiGraphBuilder()
    a = builder.add_article("Venice")
    b = builder.add_article("Gondola")
    alias = builder.add_article("Gondole", is_redirect=True)
    cat = builder.add_category("Boat types")
    builder.add_belongs(a, cat)
    builder.add_belongs(b, cat)
    builder.add_link(a, b)
    builder.add_link(b, a)
    builder.add_redirect(alias, b)
    return builder.build()


def graphs_equal(left, right):
    """Structural equality via canonical dumps."""
    return dumps_graph(left) == dumps_graph(right)


class TestRoundTrip:
    def test_string_round_trip(self, small_graph):
        text = dumps_graph(small_graph)
        reloaded = loads_graph(text)
        assert graphs_equal(small_graph, reloaded)

    def test_file_round_trip(self, small_graph, tmp_path):
        path = tmp_path / "graph.jsonl"
        write_graph(small_graph, path)
        reloaded = read_graph(path)
        assert graphs_equal(small_graph, reloaded)

    def test_gzip_round_trip(self, small_graph, tmp_path):
        path = tmp_path / "graph.jsonl.gz"
        write_graph(small_graph, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        reloaded = read_graph(path)
        assert graphs_equal(small_graph, reloaded)

    def test_synthetic_graph_round_trip(self, tmp_path):
        wiki = generate_wiki(SyntheticWikiConfig(seed=3, num_domains=4, background_articles=50))
        path = tmp_path / "wiki.jsonl"
        write_graph(wiki.graph, path)
        reloaded = read_graph(path)
        assert graphs_equal(wiki.graph, reloaded)

    def test_dump_is_deterministic(self, small_graph):
        assert dumps_graph(small_graph) == dumps_graph(small_graph)

    def test_redirect_preserved(self, small_graph):
        reloaded = loads_graph(dumps_graph(small_graph))
        alias = reloaded.article_by_title("gondole")
        assert alias is not None and alias.is_redirect
        target = reloaded.redirect_target(alias.node_id)
        assert reloaded.title(target) == "Gondola"

    def test_non_ascii_titles(self, tmp_path):
        builder = WikiGraphBuilder(strict=False)
        builder.add_article("Ponte dei Sospiri — ponte più famoso")
        graph = builder.build()
        path = tmp_path / "unicode.jsonl"
        write_graph(graph, path)
        reloaded = read_graph(path, strict=False)
        assert reloaded.article_by_title("ponte dei sospiri — ponte più famoso")


class TestFormatErrors:
    def test_empty_dump(self):
        with pytest.raises(DumpFormatError, match="empty dump"):
            loads_graph("")

    def test_missing_header(self):
        line = json.dumps({"type": "article", "id": 0, "title": "A"})
        with pytest.raises(DumpFormatError, match="header"):
            loads_graph(line + "\n")

    def test_wrong_format_name(self):
        header = json.dumps({"type": "header", "format": "other", "version": 1})
        with pytest.raises(DumpFormatError, match="unknown dump format"):
            loads_graph(header + "\n")

    def test_wrong_version(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 99})
        with pytest.raises(DumpFormatError, match="unsupported dump version"):
            loads_graph(header + "\n")

    def test_invalid_json_line(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        with pytest.raises(DumpFormatError, match="invalid JSON"):
            loads_graph(header + "\n{not json\n")

    def test_unknown_record_type(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        bad = json.dumps({"type": "mystery"})
        with pytest.raises(DumpFormatError, match="unknown record type"):
            loads_graph(f"{header}\n{bad}\n")

    def test_duplicate_header(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        with pytest.raises(DumpFormatError, match="duplicate header"):
            loads_graph(f"{header}\n{header}\n")

    def test_edge_with_unknown_node(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        edge = json.dumps({"type": "edge", "kind": "link", "src": 0, "dst": 1})
        with pytest.raises(DumpFormatError, match="unknown node id"):
            loads_graph(f"{header}\n{edge}\n")

    def test_unknown_edge_kind(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        a = json.dumps({"type": "article", "id": 0, "title": "A"})
        b = json.dumps({"type": "article", "id": 1, "title": "B"})
        edge = json.dumps({"type": "edge", "kind": "teleports", "src": 0, "dst": 1})
        with pytest.raises(DumpFormatError, match="unknown edge kind"):
            loads_graph(f"{header}\n{a}\n{b}\n{edge}\n")

    def test_missing_field(self):
        header = json.dumps({"type": "header", "format": "repro-wikigraph", "version": 1})
        bad = json.dumps({"type": "article", "id": 0})  # no title
        with pytest.raises(DumpFormatError, match="missing field"):
            loads_graph(f"{header}\n{bad}\n")

    def test_blank_lines_ignored(self, small_graph):
        text = dumps_graph(small_graph)
        padded = "\n".join(line + "\n" for line in text.splitlines())
        assert graphs_equal(loads_graph(padded), small_graph)
