"""Unit tests for the deterministic title factory."""

import random

from repro.wiki.names import ADJECTIVES, NOUNS, PLACES, TOPICS, TitleFactory


def make_factory(seed=5):
    return TitleFactory(random.Random(seed))


class TestUniqueness:
    def test_entity_titles_unique(self):
        factory = make_factory()
        titles = [factory.entity_title("venice") for _ in range(300)]
        assert len(titles) == len(set(titles))

    def test_uniqueness_across_producers(self):
        factory = make_factory()
        produced = set()
        for _ in range(50):
            for value in (
                factory.entity_title("venice"),
                factory.background_title(),
                factory.category_name("venice"),
            ):
                assert value not in produced
                produced.add(value)

    def test_exhaustion_falls_back_to_counter(self):
        factory = make_factory()
        # PLACES has 50 entries; requesting more must still return unique names.
        names = [factory.place_name() for _ in range(len(PLACES) + 10)]
        assert len(names) == len(set(names))


class TestDeterminism:
    def test_same_seed_same_titles(self):
        first = make_factory(9)
        second = make_factory(9)
        for _ in range(20):
            assert first.entity_title("x") == second.entity_title("x")

    def test_different_seed_differs(self):
        a = [make_factory(1).entity_title("x") for _ in range(5)]
        b = [make_factory(2).entity_title("x") for _ in range(5)]
        assert a != b


class TestShapes:
    def test_entity_title_lowercase_words(self):
        factory = make_factory()
        title = factory.entity_title("venice")
        assert title == title.lower()
        assert title.split()

    def test_redirect_alias_references_main(self):
        factory = make_factory()
        alias = factory.redirect_alias("grand canal")
        assert "grand canal" in alias

    def test_filler_words_count(self):
        assert len(make_factory().filler_words(7)) == 7
        assert make_factory().filler_words(0) == []

    def test_word_banks_nonempty_and_lowercase(self):
        for bank in (ADJECTIVES, NOUNS, PLACES, TOPICS):
            assert bank
            assert all(w == w.lower() for w in bank)
