"""Partition invariants: exact halos, co-location, view equivalence."""

import pytest

from repro.errors import AnalysisError, UnknownNodeError
from repro.wiki import (
    GraphPartition,
    PartitionedGraphView,
    SyntheticWikiConfig,
    generate_wiki,
    partition_graph,
    shard_of_document,
    shard_of_node,
)


@pytest.fixture(scope="module")
def graph():
    return generate_wiki(SyntheticWikiConfig(
        seed=31, num_domains=4, background_articles=60, background_categories=8,
    )).graph


@pytest.fixture(scope="module", params=[1, 2, 4])
def partitioned(request, graph):
    partitions = partition_graph(graph, request.param)
    return graph, partitions, PartitionedGraphView(partitions)


class TestHashing:
    def test_node_hash_is_deterministic_and_in_range(self):
        for node_id in range(200):
            shard = shard_of_node(node_id, 4)
            assert 0 <= shard < 4
            assert shard == shard_of_node(node_id, 4)

    def test_document_hash_is_deterministic_and_in_range(self):
        for doc_id in ("doc-1", "doc-2", "img/302887", ""):
            shard = shard_of_document(doc_id, 3)
            assert 0 <= shard < 3
            assert shard == shard_of_document(doc_id, 3)

    def test_hashes_spread_across_shards(self):
        node_shards = {shard_of_node(n, 4) for n in range(100)}
        doc_shards = {shard_of_document(f"d{n}", 4) for n in range(100)}
        assert node_shards == {0, 1, 2, 3}
        assert doc_shards == {0, 1, 2, 3}


class TestPartitioning:
    def test_core_sets_partition_the_nodes(self, partitioned):
        graph, partitions, _ = partitioned
        seen: set[int] = set()
        for partition in partitions:
            assert not (partition.core_ids & seen)
            seen |= partition.core_ids
        assert seen == set(graph.node_ids())

    def test_owned_edges_cover_every_edge_once(self, partitioned):
        graph, partitions, _ = partitioned
        owned = [
            (e.source, e.target, e.kind)
            for p in partitions for e in p.owned_edges()
        ]
        assert len(owned) == len(set(owned)) == graph.num_edges

    def test_core_adjacency_is_exact(self, partitioned):
        """Every core node's shard answers adjacency like the full graph."""
        graph, partitions, _ = partitioned
        for partition in partitions:
            for node_id in partition.core_ids:
                assert partition.graph.undirected_neighbors(node_id) == \
                    graph.undirected_neighbors(node_id)
                if graph.is_article(node_id):
                    assert partition.graph.links_from(node_id) == \
                        graph.links_from(node_id)
                    assert partition.graph.categories_of(node_id) == \
                        graph.categories_of(node_id)
                    assert partition.graph.redirects_of(node_id) == \
                        graph.redirects_of(node_id)

    def test_redirects_colocated_with_target(self, graph):
        partitions = partition_graph(graph, 4)
        owner = {
            node_id: p.shard_id for p in partitions for node_id in p.core_ids
        }
        redirects = [a for a in graph.articles() if a.is_redirect]
        assert redirects, "fixture graph should contain redirects"
        for article in redirects:
            assert owner[article.node_id] == owner[graph.resolve(article.node_id)]

    def test_single_shard_has_no_halo(self, graph):
        (partition,) = partition_graph(graph, 1)
        assert partition.core_ids == set(graph.node_ids())
        assert partition.graph.num_edges == graph.num_edges

    def test_invalid_shard_count(self, graph):
        with pytest.raises(AnalysisError):
            partition_graph(graph, 0)


class TestPayloadRoundTrip:
    def test_round_trip_preserves_everything(self, graph):
        for partition in partition_graph(graph, 3):
            rebuilt = GraphPartition.from_payload(partition.to_payload())
            assert rebuilt.shard_id == partition.shard_id
            assert rebuilt.num_shards == partition.num_shards
            assert rebuilt.core_articles == partition.core_articles
            assert rebuilt.core_categories == partition.core_categories
            assert rebuilt.graph.num_nodes == partition.graph.num_nodes
            assert rebuilt.graph.num_edges == partition.graph.num_edges
            for node_id in rebuilt.core_ids:
                assert rebuilt.graph.undirected_neighbors(node_id) == \
                    partition.graph.undirected_neighbors(node_id)

    def test_malformed_payload_rejected(self):
        with pytest.raises(AnalysisError):
            GraphPartition.from_payload({"shard": 0})


class TestViewEquivalence:
    def test_counts_match(self, partitioned):
        graph, _, view = partitioned
        assert view.num_articles == graph.num_articles
        assert view.num_main_articles == graph.num_main_articles
        assert view.num_categories == graph.num_categories
        assert view.num_nodes == graph.num_nodes
        assert view.num_edges == graph.num_edges
        assert len(view) == len(graph)

    def test_adjacency_matches_everywhere(self, partitioned):
        graph, _, view = partitioned
        for node_id in graph.node_ids():
            assert view.undirected_neighbors(node_id) == \
                graph.undirected_neighbors(node_id)
            assert view.degree(node_id) == graph.degree(node_id)
            assert view.title(node_id) == graph.title(node_id)
            assert view.kind(node_id) == graph.kind(node_id)
        for article in graph.articles():
            node_id = article.node_id
            assert view.links_from(node_id) == graph.links_from(node_id)
            assert view.links_to(node_id) == graph.links_to(node_id)
            assert view.categories_of(node_id) == graph.categories_of(node_id)
            assert view.resolve(node_id) == graph.resolve(node_id)
            assert view.redirect_target(node_id) == graph.redirect_target(node_id)
        for category in graph.categories():
            node_id = category.node_id
            assert view.members_of(node_id) == graph.members_of(node_id)
            assert view.parents_of(node_id) == graph.parents_of(node_id)
            assert view.children_of(node_id) == graph.children_of(node_id)

    def test_node_iteration_and_title_lookup(self, partitioned):
        graph, _, view = partitioned
        assert {a.node_id for a in view.articles()} == \
            {a.node_id for a in graph.articles()}
        assert {c.node_id for c in view.categories()} == \
            {c.node_id for c in graph.categories()}
        assert set(view.node_ids()) == set(graph.node_ids())
        assert set(view.titles()) == set(graph.titles())
        some = next(iter(graph.main_articles()))
        assert view.article_by_title(some.title) == some

    def test_edges_iterate_once_each(self, partitioned):
        graph, _, view = partitioned
        mine = sorted(
            (e.kind.value, e.source, e.target) for e in view.edges()
        )
        reference = sorted(
            (e.kind.value, e.source, e.target) for e in graph.edges()
        )
        assert mine == reference

    def test_induced_subgraph_matches_monolithic(self, partitioned):
        graph, _, view = partitioned
        # A ball around an article plus an arbitrary slice of node ids.
        seed = next(iter(graph.main_articles())).node_id
        ball = {seed} | graph.undirected_neighbors(seed)
        for keep in (ball, set(list(graph.node_ids())[::3])):
            mine = view.induced_subgraph(keep)
            reference = graph.induced_subgraph(keep)
            assert mine.num_nodes == reference.num_nodes
            assert mine.num_edges == reference.num_edges
            for node_id in keep:
                assert mine.undirected_neighbors(node_id) == \
                    reference.undirected_neighbors(node_id)

    def test_unknown_nodes(self, partitioned):
        graph, _, view = partitioned
        missing = max(graph.node_ids()) + 1000
        assert missing not in view
        assert view.undirected_neighbors(missing) == set()
        with pytest.raises(UnknownNodeError):
            view.node(missing)
        with pytest.raises(UnknownNodeError):
            view.induced_subgraph({missing})
        with pytest.raises(UnknownNodeError):
            view.owner_shard(missing)

    def test_incomplete_partition_set_rejected(self, graph):
        partitions = partition_graph(graph, 3)
        with pytest.raises(AnalysisError):
            PartitionedGraphView(partitions[:2])
        with pytest.raises(AnalysisError):
            PartitionedGraphView([])
