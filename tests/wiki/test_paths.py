"""Unit tests for BFS distance helpers."""

import pytest

from repro.errors import UnknownNodeError
from repro.wiki import WikiGraphBuilder, bfs_distances, distance_histogram, eccentricity


@pytest.fixture
def chain_graph():
    """a -> b -> c -> d plus isolated e."""
    builder = WikiGraphBuilder(strict=False)
    ids = [builder.add_article(name) for name in "abcde"]
    a, b, c, d, _ = ids
    builder.add_link(a, b)
    builder.add_link(b, c)
    builder.add_link(c, d)
    return builder.build(), ids


class TestBfsDistances:
    def test_distances_from_single_source(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        distances = bfs_distances(graph, [a])
        assert distances == {a: 0, b: 1, c: 2, d: 3}

    def test_direction_ignored(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        distances = bfs_distances(graph, [d])
        assert distances[a] == 3

    def test_multiple_sources_take_minimum(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        distances = bfs_distances(graph, [a, d])
        assert distances[b] == 1
        assert distances[c] == 1

    def test_max_distance_truncates(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        distances = bfs_distances(graph, [a], max_distance=1)
        assert set(distances) == {a, b}

    def test_unknown_source(self, chain_graph):
        graph, _ = chain_graph
        with pytest.raises(UnknownNodeError):
            bfs_distances(graph, [999])

    def test_no_sources(self, chain_graph):
        graph, _ = chain_graph
        assert bfs_distances(graph, []) == {}

    def test_categories_traversed(self):
        builder = WikiGraphBuilder()
        a = builder.add_article("a")
        b = builder.add_article("b")
        cat = builder.add_category("shared")
        builder.add_belongs(a, cat)
        builder.add_belongs(b, cat)
        graph = builder.build()
        assert bfs_distances(graph, [a])[b] == 2


class TestDistanceHistogram:
    def test_histogram(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        histogram = distance_histogram(graph, [a], [b, c, d, e])
        assert histogram == {-1: 1, 1: 1, 2: 1, 3: 1}

    def test_unknown_target(self, chain_graph):
        graph, (a, *_rest) = chain_graph
        with pytest.raises(UnknownNodeError):
            distance_histogram(graph, [a], [404])

    def test_custom_unreachable_key(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        histogram = distance_histogram(graph, [a], [e], unreachable_key=99)
        assert histogram == {99: 1}


class TestEccentricity:
    def test_chain_end(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        assert eccentricity(graph, a) == 3
        assert eccentricity(graph, b) == 2

    def test_isolated_node(self, chain_graph):
        graph, (a, b, c, d, e) = chain_graph
        assert eccentricity(graph, e) == 0
