"""Unit tests for repro.wiki.schema."""

import pytest

from repro.wiki.schema import (
    EDGE_ENDPOINT_KINDS,
    Article,
    Category,
    Edge,
    EdgeKind,
    NodeKind,
    normalize_title,
)


class TestNormalizeTitle:
    def test_lowercases(self):
        assert normalize_title("Grand Canal") == "grand canal"

    def test_underscores_become_spaces(self):
        assert normalize_title("Grand_Canal_(Venice)") == "grand canal (venice)"

    def test_whitespace_collapsed_and_stripped(self):
        assert normalize_title("  Grand   Canal  ") == "grand canal"

    def test_idempotent(self):
        once = normalize_title("  Bridge_of  Sighs ")
        assert normalize_title(once) == once

    def test_empty_stays_empty(self):
        assert normalize_title("") == ""

    def test_tabs_and_newlines(self):
        assert normalize_title("a\tb\nc") == "a b c"


class TestArticle:
    def test_norm_title(self):
        article = Article(1, "Bridge_of Sighs")
        assert article.norm_title == "bridge of sighs"

    def test_kind(self):
        assert Article(1, "Venice").kind is NodeKind.ARTICLE

    def test_default_not_redirect(self):
        assert Article(1, "Venice").is_redirect is False

    def test_frozen(self):
        article = Article(1, "Venice")
        with pytest.raises(AttributeError):
            article.title = "Rome"

    def test_title_property_matches(self):
        assert Article(3, "Venice").title == "Venice"


class TestCategory:
    def test_kind(self):
        assert Category(2, "Canals in Italy").kind is NodeKind.CATEGORY

    def test_title_alias(self):
        category = Category(2, "Canals in Italy")
        assert category.title == category.name == "Canals in Italy"

    def test_norm_title(self):
        assert Category(2, "Canals_in_Italy").norm_title == "canals in italy"


class TestEdge:
    def test_default_kind_is_link(self):
        assert Edge(1, 2).kind is EdgeKind.LINK

    def test_reversed_swaps_endpoints_keeps_kind(self):
        edge = Edge(1, 2, EdgeKind.BELONGS)
        rev = edge.reversed()
        assert (rev.source, rev.target, rev.kind) == (2, 1, EdgeKind.BELONGS)

    def test_edge_is_hashable(self):
        assert len({Edge(1, 2), Edge(1, 2), Edge(2, 1)}) == 2


class TestEdgeKindVocabulary:
    def test_redirect_string_value_matches_figure_1(self):
        assert str(EdgeKind.REDIRECT) == "redirects_to"

    def test_every_kind_has_endpoint_constraint(self):
        assert set(EDGE_ENDPOINT_KINDS) == set(EdgeKind)

    def test_belongs_connects_article_to_category(self):
        assert EDGE_ENDPOINT_KINDS[EdgeKind.BELONGS] == (
            NodeKind.ARTICLE,
            NodeKind.CATEGORY,
        )
