"""Unit tests for repro.wiki.stats."""

import networkx as nx
import pytest

from repro.errors import UnknownNodeError
from repro.wiki import (
    WikiGraphBuilder,
    category_tree_violations,
    composition,
    connected_components,
    largest_connected_component,
    reciprocal_link_ratio,
    triangle_participation_ratio,
)


class TestTrianglePariticipationRatio:
    def test_empty_graph(self):
        assert triangle_participation_ratio(nx.Graph()) == 0.0

    def test_pure_triangle(self):
        graph = nx.cycle_graph(3)
        assert triangle_participation_ratio(graph) == 1.0

    def test_path_has_no_triangles(self):
        graph = nx.path_graph(5)
        assert triangle_participation_ratio(graph) == 0.0

    def test_mixed(self):
        graph = nx.cycle_graph(3)  # nodes 0,1,2 in a triangle
        graph.add_edge(2, 3)  # pendant node, not in a triangle
        assert triangle_participation_ratio(graph) == pytest.approx(3 / 4)

    def test_tree_is_zero(self):
        graph = nx.balanced_tree(2, 3)
        assert triangle_participation_ratio(graph) == 0.0


class TestReciprocalLinkRatio:
    def _two_articles(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("A")
        b = builder.add_article("B")
        return builder, a, b

    def test_no_links(self):
        builder, _, _ = self._two_articles()
        assert reciprocal_link_ratio(builder.build()) == 0.0

    def test_one_way_pair(self):
        builder, a, b = self._two_articles()
        builder.add_link(a, b)
        assert reciprocal_link_ratio(builder.build()) == 0.0

    def test_reciprocal_pair(self):
        builder, a, b = self._two_articles()
        builder.add_link(a, b)
        builder.add_link(b, a)
        assert reciprocal_link_ratio(builder.build()) == 1.0

    def test_mixed_pairs(self):
        builder = WikiGraphBuilder(strict=False)
        nodes = [builder.add_article(f"N{i}") for i in range(4)]
        builder.add_link(nodes[0], nodes[1])
        builder.add_link(nodes[1], nodes[0])  # reciprocal pair
        builder.add_link(nodes[0], nodes[2])  # one-way
        builder.add_link(nodes[3], nodes[0])  # one-way, higher id -> lower
        assert reciprocal_link_ratio(builder.build()) == pytest.approx(1 / 3)

    def test_direction_from_higher_to_lower_only(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("A")
        b = builder.add_article("B")
        builder.add_link(b, a)  # only direction high->low
        assert reciprocal_link_ratio(builder.build()) == 0.0


class TestComponents:
    @pytest.fixture
    def disconnected(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("A")
        b = builder.add_article("B")
        c = builder.add_article("C")
        d = builder.add_article("D")
        e = builder.add_article("E")
        builder.add_link(a, b)
        builder.add_link(b, c)
        builder.add_link(d, e)
        return builder.build(), {"a": a, "b": b, "c": c, "d": d, "e": e}

    def test_components_sorted_largest_first(self, disconnected):
        graph, ids = disconnected
        components = connected_components(graph)
        assert len(components) == 2
        assert components[0] == {ids["a"], ids["b"], ids["c"]}

    def test_largest_connected_component(self, disconnected):
        graph, ids = disconnected
        assert largest_connected_component(graph) == {ids["a"], ids["b"], ids["c"]}

    def test_empty_graph_has_no_components(self):
        graph = WikiGraphBuilder(strict=False).build()
        assert connected_components(graph) == []
        assert largest_connected_component(graph) == set()

    def test_categories_connect_articles(self):
        builder = WikiGraphBuilder()
        a = builder.add_article("A")
        b = builder.add_article("B")
        cat = builder.add_category("Shared")
        builder.add_belongs(a, cat)
        builder.add_belongs(b, cat)
        graph = builder.build()
        assert largest_connected_component(graph) == {a, b, cat}


class TestComposition:
    def test_counts_and_ratios(self):
        builder = WikiGraphBuilder()
        a = builder.add_article("A")
        b = builder.add_article("B")
        cat = builder.add_category("C")
        builder.add_belongs(a, cat)
        builder.add_belongs(b, cat)
        graph = builder.build()
        comp = composition(graph, [a, b, cat])
        assert comp.num_articles == 2
        assert comp.num_categories == 1
        assert comp.article_ratio == pytest.approx(2 / 3)
        assert comp.category_ratio == pytest.approx(1 / 3)

    def test_empty_set(self):
        graph = WikiGraphBuilder(strict=False).build()
        comp = composition(graph, [])
        assert comp.num_nodes == 0
        assert comp.article_ratio == 0.0
        assert comp.category_ratio == 0.0

    def test_unknown_node_raises(self):
        graph = WikiGraphBuilder(strict=False).build()
        with pytest.raises(UnknownNodeError):
            composition(graph, [42])


class TestCategoryTree:
    def test_strict_tree_has_no_violations(self):
        builder = WikiGraphBuilder(strict=False)
        root = builder.add_category("root")
        child = builder.add_category("child")
        builder.add_inside(child, root)
        assert category_tree_violations(builder.build()) == 0

    def test_multi_parent_counts(self):
        builder = WikiGraphBuilder(strict=False)
        p1 = builder.add_category("p1")
        p2 = builder.add_category("p2")
        child = builder.add_category("child")
        builder.add_inside(child, p1)
        builder.add_inside(child, p2)
        assert category_tree_violations(builder.build()) == 1
