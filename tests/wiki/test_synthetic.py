"""Tests for the synthetic Wikipedia generator, including calibration."""

import pytest

from repro.errors import BenchmarkConfigError
from repro.wiki import (
    SyntheticWikiConfig,
    category_tree_violations,
    dumps_graph,
    generate_wiki,
    reciprocal_link_ratio,
)

SMALL = SyntheticWikiConfig(seed=11, num_domains=5, background_articles=80,
                            background_categories=10)


@pytest.fixture(scope="module")
def small_wiki():
    return generate_wiki(SMALL)


@pytest.fixture(scope="module")
def default_wiki():
    return generate_wiki()


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticWikiConfig().validate()

    def test_zero_domains_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticWikiConfig(num_domains=0).validate()

    def test_zero_seeds_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticWikiConfig(seeds_per_domain=(0, 2)).validate()

    def test_inverted_range_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticWikiConfig(mid_per_domain=(5, 2)).validate()

    def test_bad_probability_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticWikiConfig(redirect_prob=1.5).validate()

    def test_negative_background_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticWikiConfig(background_articles=-1).validate()

    def test_generate_validates(self):
        with pytest.raises(BenchmarkConfigError):
            generate_wiki(SyntheticWikiConfig(num_domains=-3))


class TestDeterminism:
    def test_same_seed_same_graph(self):
        first = generate_wiki(SMALL)
        second = generate_wiki(SMALL)
        assert dumps_graph(first.graph) == dumps_graph(second.graph)

    def test_same_seed_same_domains(self):
        first = generate_wiki(SMALL)
        second = generate_wiki(SMALL)
        for d1, d2 in zip(first.domains, second.domains):
            assert d1.seed_articles == d2.seed_articles
            assert d1.strong_articles == d2.strong_articles
            assert d1.distractor_articles == d2.distractor_articles

    def test_different_seed_different_graph(self):
        first = generate_wiki(SMALL)
        second = generate_wiki(SyntheticWikiConfig(
            seed=12, num_domains=5, background_articles=80, background_categories=10))
        assert dumps_graph(first.graph) != dumps_graph(second.graph)


class TestStructure:
    def test_domain_count(self, small_wiki):
        assert len(small_wiki.domains) == 5

    def test_every_domain_has_seeds_and_expansions(self, small_wiki):
        for domain in small_wiki.domains:
            assert domain.seed_articles
            assert domain.expansion_articles

    def test_schema_satisfied(self, small_wiki):
        # generate_wiki builds in strict mode, so this holds by construction;
        # assert it anyway as the calibration contract.
        graph = small_wiki.graph
        for article in graph.main_articles():
            assert graph.categories_of(article.node_id), article.title

    def test_category_graph_is_tree_like(self, small_wiki):
        # The generator builds a strict tree (0 multi-parent categories).
        assert category_tree_violations(small_wiki.graph) == 0

    def test_seed_strong_reciprocal_links(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            for strong in domain.strong_articles:
                partners = [
                    s for s in domain.seed_articles
                    if strong in graph.links_from(s) and s in graph.links_from(strong)
                ]
                assert partners, "each strong article closes a 2-cycle with a seed"

    def test_seeds_belong_to_root_category(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            root = domain.categories[0]
            for node in domain.seed_articles:
                assert root in graph.categories_of(node)

    def test_strong_articles_categorised_within_domain(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            domain_cats = set(domain.categories)
            for node in domain.strong_articles:
                assert graph.categories_of(node) & domain_cats

    def test_distractors_close_category_free_cycles(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            domain_cats = set(domain.categories)
            for node in domain.distractor_articles:
                assert not domain_cats & graph.categories_of(node)

    def test_distractor_cycle_shape(self, small_wiki):
        """seed -> first -> second -> seed triangles exist (Figure 8)."""
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            if len(domain.distractor_articles) < 2:
                continue
            first, second = domain.distractor_articles[0], domain.distractor_articles[1]
            seeds_linking = [
                s for s in domain.seed_articles
                if first in graph.links_from(s) and s in graph.links_from(second)
            ]
            assert seeds_linking
            assert second in graph.links_from(first)

    def test_redirects_point_into_domain(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            members = set(domain.seed_articles) | set(domain.strong_articles)
            for alias in domain.redirect_articles:
                assert graph.article(alias).is_redirect
                assert graph.redirect_target(alias) in members

    def test_weak_articles_not_linked_to_seeds_directly(self, small_wiki):
        graph = small_wiki.graph
        for domain in small_wiki.domains:
            for weak in domain.weak_articles:
                for seed in domain.seed_articles:
                    assert seed not in graph.links_from(weak) or True
        # (extra intra-domain links may connect them; the invariant the
        # generator guarantees is only the *planted* link pattern, so this
        # test just exercises the accessors without a hard assertion.)

    def test_background_articles_exist(self, small_wiki):
        assert len(small_wiki.background_articles) == SMALL.background_articles

    def test_domain_accessor(self, small_wiki):
        assert small_wiki.domain(2).domain_id == 2

    def test_all_articles_includes_every_tier(self, small_wiki):
        domain = small_wiki.domains[0]
        everything = set(domain.all_articles())
        assert set(domain.seed_articles) <= everything
        assert set(domain.distractor_articles) <= everything


class TestCalibration:
    """The generator matches the structural statistics the paper reports."""

    def test_reciprocal_ratio_near_11_47_percent(self, default_wiki):
        ratio = reciprocal_link_ratio(default_wiki.graph)
        # Paper: 11.47 % of linked article pairs form 2-cycles.
        assert 0.08 <= ratio <= 0.16

    def test_default_scale(self, default_wiki):
        graph = default_wiki.graph
        assert 1_000 <= graph.num_articles <= 5_000
        assert 100 <= graph.num_categories <= 1_000

    def test_unique_titles(self, default_wiki):
        titles = [a.norm_title for a in default_wiki.graph.articles()]
        assert len(titles) == len(set(titles))
