#!/usr/bin/env python3
"""Offline markdown link checker for the docs tree (no dependencies).

Scans ``README.md`` and ``docs/*.md`` for markdown links and verifies:

* relative file targets exist (``docs/http_api.md``, ``src/...``);
* ``#fragment`` targets name a real heading in the target file
  (GitHub-style anchors: lowercased, punctuation stripped, spaces to
  dashes);
* bare ``#fragment`` links resolve within their own file.

External ``http(s)://`` and ``mailto:`` targets are skipped — CI must
not depend on the network. Exits 1 listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
# [text](target) — target up to the first closing paren (no nesting in
# our docs); images (![alt](..)) match too, which is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop inline code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower().strip()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(match) for match in _HEADING.findall(text)}


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if file_part and not resolved.exists():
            problems.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
            continue
        if fragment:
            if resolved.is_file() and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    problems.append(
                        f"{path.relative_to(ROOT)}: missing anchor -> {target}"
                    )
            elif not resolved.is_file():
                problems.append(
                    f"{path.relative_to(ROOT)}: fragment on non-file -> {target}"
                )
    return problems


def main() -> int:
    files = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    missing = [f for f in files if not f.exists()]
    if missing:
        for path in missing:
            print(f"missing documentation file: {path.relative_to(ROOT)}")
        return 1
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken documentation link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    total_links = sum(
        len(_LINK.findall(p.read_text(encoding="utf-8"))) for p in files
    )
    print(f"docs link check ok: {len(files)} files, {total_links} links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
