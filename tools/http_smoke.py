#!/usr/bin/env python3
"""CI smoke test of the HTTP serving path (no dependencies).

End to end, as a real deployment would run it:

1. build a small sharded snapshot and save it to a temp directory;
2. launch ``python -m repro.cli serve --snapshot DIR --http 0`` as a
   subprocess and parse the bound port from its startup output;
3. ``GET /healthz`` and ``POST /expand`` over a real socket;
4. answer the same query with an in-process :class:`ShardRouter` over
   the same snapshot directory and diff the JSON against it — doc ids,
   scores (bit-exact after the JSON round trip), expansion sets and
   titles must all match;
5. shut the server down and fail loudly if anything differed.

Run from the repo root with ``PYTHONPATH=src`` (CI does).
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SEED = 61


def build_snapshot(directory: Path):
    from repro.collection import Benchmark, SyntheticCollectionConfig
    from repro.service import ShardedSnapshot
    from repro.wiki import SyntheticWikiConfig

    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=SEED, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=SEED + 1, background_docs=40),
    )
    snapshot = ShardedSnapshot.build(benchmark, num_shards=2)
    snapshot.save(directory)
    return benchmark


def wait_for_port(proc: subprocess.Popen, timeout: float = 180.0) -> int:
    pattern = re.compile(r"http://[\d.]+:(\d+)")
    deadline = time.time() + timeout
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before binding (rc={proc.poll()})"
            )
        sys.stdout.write(f"  server: {line}")
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise SystemExit("timed out waiting for the server to print its port")


def get_json(url: str, payload: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={} if payload is None else {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        snap_dir = Path(tmp) / "snap"
        benchmark = build_snapshot(snap_dir)
        query = benchmark.topics[0].keywords
        print(f"snapshot built at {snap_dir}; query: {query!r}")

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--snapshot", str(snap_dir), "--http", "0"],
            cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = wait_for_port(proc)
            base = f"http://127.0.0.1:{port}"

            health = get_json(f"{base}/healthz")
            print(f"healthz: {health}")
            if health.get("status") != "ok":
                failures.append(f"healthz status not ok: {health}")
            if health.get("shards") != 2:
                failures.append(f"healthz shards != 2: {health}")
            if "v3 sharded" not in health.get("snapshot", ""):
                failures.append(f"healthz does not echo the v3 layout: {health}")

            served = get_json(f"{base}/expand", {"query": query})

            # The synchronous reference over the very same on-disk snapshot.
            from repro.service import ShardRouter, ShardedSnapshot
            router = ShardRouter(ShardedSnapshot.load(snap_dir))
            reference = router.expand_query(query)

            http_results = [(r["doc_id"], r["score"]) for r in served["results"]]
            ref_results = [(r.doc_id, r.score) for r in reference.results]
            if http_results != ref_results:
                failures.append(
                    "HTTP /expand results differ from the in-process router:\n"
                    f"  http: {http_results}\n  sync: {ref_results}"
                )
            if served["expansion"]["article_ids"] != \
                    sorted(reference.expansion.article_ids):
                failures.append("HTTP expansion article set differs")
            if served["expansion"]["titles"] != list(reference.expansion.titles):
                failures.append("HTTP expansion titles differ")
            if served["linked"] != reference.linked:
                failures.append("HTTP linked flag differs")
            print(f"expand: {len(served['results'])} results, "
                  f"linked={served['linked']} — matches in-process router")

            after = get_json(f"{base}/healthz")
            if after.get("requests_total", 0) < 1:
                failures.append(f"requests_total did not advance: {after}")
            router.close()
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    if failures:
        print("HTTP smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("HTTP smoke ok: /healthz and /expand match the synchronous path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
