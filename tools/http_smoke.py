#!/usr/bin/env python3
"""CI smoke test of the HTTP serving path (no dependencies).

End to end, as a real deployment would run it:

1. build a small sharded snapshot and save it to a temp directory;
2. launch ``python -m repro.cli serve --snapshot DIR --http 0`` as a
   subprocess and parse the bound port from its startup output;
3. ``GET /healthz`` and ``POST /expand`` over a real socket;
4. answer the same query with an in-process :class:`ShardRouter` over
   the same snapshot directory and diff the JSON against it — doc ids,
   scores (bit-exact after the JSON round trip), expansion sets and
   titles must all match;
5. ``GET /metrics`` and round-trip the Prometheus exposition through
   :func:`repro.obs.parse_prometheus_text`; the stage histograms and
   the HTTP request counter must be non-zero after the ``/expand``;
6. render one ``repro top --once`` dashboard frame against the live
   server (the scriptable mode operators pipe to files);
7. exercise the live-update plane: ``POST /admin/apply_delta`` with a
   small island batch, assert ``delta_seq`` advances and the new page
   answers ``/expand``, then ``POST /admin/compact`` and assert the
   generation hot-swaps (``snapshot_generation`` advances, ``delta_seq``
   resets) with answers unchanged across the swap;
8. assert the recency set was persisted on shutdown
   (``recent_queries.json`` next to the snapshot manifest), then
   relaunch with admission control (``--queue-limit``/``--client-rate``)
   and drive a real overload→shed→recover cycle: a greedy client is
   refused with structured ``429`` envelopes + ``Retry-After`` while a
   polite client keeps serving, ``repro_shed_total`` advances in
   ``/metrics``, and once the flood stops the greedy client serves
   again with the queue drained — and the relaunch must warm-start
   from the persisted recency set;
9. relaunch with ``--workers 2`` (out-of-process shard workers behind
   the socket adapter), diff ``/expand`` against the same in-process
   reference, then SIGKILL one worker process mid-run and assert the
   supervisor restarts it (``/healthz`` workers back to ``up``, the
   ``repro_shard_worker_restarts_total`` counter advanced) and that
   post-restart answers are still identical;
10. repeat the live-update phase in worker mode (delta fan-out over the
    wire, compaction driving a rolling worker reload);
11. shut the servers down and fail loudly if anything differed.

Run from the repo root with ``PYTHONPATH=src`` (CI does).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SEED = 61


def build_snapshot(directory: Path):
    from repro.collection import Benchmark, SyntheticCollectionConfig
    from repro.service import ShardedSnapshot
    from repro.wiki import SyntheticWikiConfig

    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=SEED, num_domains=5, background_articles=80,
                            background_categories=10),
        SyntheticCollectionConfig(seed=SEED + 1, background_docs=40),
    )
    snapshot = ShardedSnapshot.build(benchmark, num_shards=2)
    snapshot.save(directory)
    return benchmark


def wait_for_port(proc: subprocess.Popen, timeout: float = 180.0) -> int:
    pattern = re.compile(r"http://[\d.]+:(\d+)")
    deadline = time.time() + timeout
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before binding (rc={proc.poll()})"
            )
        sys.stdout.write(f"  server: {line}")
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise SystemExit("timed out waiting for the server to print its port")


def get_json(url: str, payload: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={} if payload is None else {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def post_as_client(
    url: str, payload: dict, client: str
) -> tuple[int, dict, dict]:
    """POST with an ``X-Client-Id``; 4xx comes back as data, not a raise."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", "X-Client-Id": client},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8") or "{}")
        return error.code, body, dict(error.headers)


def get_text(url: str) -> tuple[str, str]:
    """Plain GET; returns (body, content-type)."""
    with urllib.request.urlopen(url, timeout=60) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def check_metrics(base: str, failures: list[str]) -> None:
    """GET /metrics must serve parseable exposition with live counters."""
    from repro.obs import parse_prometheus_text

    text, content_type = get_text(f"{base}/metrics")
    if not content_type.startswith("text/plain"):
        failures.append(f"/metrics content type is {content_type!r}, not text")
    try:
        parsed = parse_prometheus_text(text)
    except ValueError as error:
        failures.append(f"/metrics is not valid exposition text: {error}")
        return

    def sample(name: str, **labels) -> float:
        for (candidate, labelset), value in parsed["samples"].items():
            if candidate == name and dict(labelset) == labels:
                return value
        return 0.0

    if sample("repro_requests_total", path="expand_query") < 1:
        failures.append("repro_requests_total{path=expand_query} is zero")
    if sample("repro_http_requests_total", endpoint="/expand") < 1:
        failures.append("repro_http_requests_total{endpoint=/expand} is zero")
    for stage in ("link", "expand", "rank", "merge"):
        if sample("repro_stage_seconds_count", stage=stage) < 1:
            failures.append(f"stage counter {stage!r} is zero after /expand")
    # The cold /expand above mined cycles; the span's engine label must
    # show the configured engine (the bitset kernels by default).
    engine = os.environ.get("REPRO_CYCLE_ENGINE") or "kernels"
    if sample("repro_cycle_mine_total", engine=engine) < 1:
        failures.append(
            f"repro_cycle_mine_total{{engine={engine}}} is zero — the "
            "cycle_mine span lost its engine label"
        )
    if sample("repro_uptime_seconds") <= 0:
        failures.append("repro_uptime_seconds gauge was not refreshed")
    print(f"metrics: {len(parsed['samples'])} samples, "
          f"stage counters live — exposition parses back")


def check_top_once(base: str, failures: list[str]) -> None:
    """`repro top --once` must render one frame against the live server."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "top", base, "--once"],
        cwd=ROOT, capture_output=True, text=True, timeout=120,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    if result.returncode != 0:
        failures.append(
            f"repro top --once exited {result.returncode}: {result.stderr}"
        )
        return
    frame = result.stdout
    for needle in ("repro top", "router", "stage"):
        if needle not in frame:
            failures.append(f"top frame is missing {needle!r}:\n{frame}")
    print("top: one-shot dashboard frame rendered")


def check_live_updates(
    base: str, query: str, ref_results: list, failures: list[str],
    *, id_base: int, tag: str,
) -> None:
    """apply_delta -> re-query -> compact -> hot swap, over the admin API.

    Generation-agnostic (the worker-mode relaunch serves the generation
    the first phase compacted), and the delta targets fresh node ids so
    both phases can run against the same snapshot directory.
    """
    health = get_json(f"{base}/healthz")
    gen0 = health.get("snapshot_generation")
    if not isinstance(gen0, int):
        failures.append(f"{tag}: healthz snapshot_generation not an int: {health}")
        return
    if health.get("delta_seq") != 0:
        failures.append(f"{tag}: fresh server has nonzero delta_seq: {health}")

    payloads = [
        {"op": "add_article", "seq": 1, "node_id": id_base,
         "title": f"Smoke Live Page {id_base}"},
        {"op": "add_article", "seq": 2, "node_id": id_base + 1,
         "title": f"Smoke Live Friend {id_base}"},
        {"op": "add_edge", "seq": 3, "source": id_base, "target": id_base + 1,
         "kind": "link"},
    ]
    summary = get_json(f"{base}/admin/apply_delta",
                       {"deltas": payloads, "generation": gen0})
    if summary.get("applied") != 3:
        failures.append(f"{tag}: apply_delta did not apply 3: {summary}")
        return
    if summary.get("stale_workers"):
        failures.append(f"{tag}: fan-out left stale workers: {summary}")
    if summary.get("invalidated", {}).get("expansion") != 0:
        failures.append(
            f"{tag}: an island delta must evict no expansions: {summary}"
        )
    health = get_json(f"{base}/healthz")
    if health.get("delta_seq") != 3:
        failures.append(f"{tag}: delta_seq not 3 after apply: {health}")

    live_query = f"smoke live page {id_base}"
    overlay = get_json(f"{base}/expand", {"query": live_query})
    if not overlay.get("linked"):
        failures.append(f"{tag}: added article did not link: {overlay}")
    overlay_results = [(r["doc_id"], r["score"]) for r in overlay["results"]]

    topic = get_json(f"{base}/expand", {"query": query})
    if [(r["doc_id"], r["score"]) for r in topic["results"]] != ref_results:
        failures.append(f"{tag}: overlay changed an unrelated topic's answer")

    compacted = get_json(f"{base}/admin/compact", {})
    if compacted.get("generation") != gen0 + 1 or \
            compacted.get("folded_seq") != 3:
        failures.append(f"{tag}: compact summary wrong: {compacted}")
        return
    health = get_json(f"{base}/healthz")
    if health.get("snapshot_generation") != gen0 + 1 or \
            health.get("delta_seq") != 0:
        failures.append(f"{tag}: healthz generation did not advance: {health}")
    workers = health.get("workers")
    if workers is not None and any(w.get("state") != "up" for w in workers):
        failures.append(f"{tag}: workers not up after rolling reload: {health}")

    after = get_json(f"{base}/expand", {"query": live_query})
    if [(r["doc_id"], r["score"]) for r in after["results"]] != overlay_results:
        failures.append(
            f"{tag}: compacted generation answers differ from the overlay"
        )
    topic = get_json(f"{base}/expand", {"query": query})
    if [(r["doc_id"], r["score"]) for r in topic["results"]] != ref_results:
        failures.append(f"{tag}: hot swap changed an unrelated topic's answer")
    print(f"{tag}: apply_delta -> re-query -> compact -> hot swap ok "
          f"(generation {gen0} -> {gen0 + 1})")


def check_shedding(snap_dir: Path, query: str, failures: list[str]) -> None:
    """Relaunch with admission control; overload -> shed -> recover."""
    from repro.obs import parse_prometheus_text

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--snapshot", str(snap_dir), "--http", "0",
         "--queue-limit", "16", "--client-rate", "3", "--client-burst", "3"],
        cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # Read startup lines by hand: the warm-start banner prints
        # before the bound-port line and must be observed here.
        pattern = re.compile(r"http://[\d.]+:(\d+)")
        warm_started = False
        port = None
        deadline = time.time() + 180
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise SystemExit(
                    f"shed server exited before binding (rc={proc.poll()})"
                )
            sys.stdout.write(f"  server: {line}")
            if "warm start: replayed" in line:
                warm_started = True
            match = pattern.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("timed out waiting for the shed server's port")
        if not warm_started:
            failures.append(
                "relaunch did not warm-start from the persisted recency set"
            )
        base = f"http://127.0.0.1:{port}"

        # Overload: one greedy client fires a burst far beyond its
        # 3 req/s budget; a polite client asks once in the middle.
        greedy: list[tuple[int, dict, dict]] = []
        for _ in range(12):
            greedy.append(post_as_client(
                f"{base}/expand", {"query": query}, "smoke-greedy"
            ))
        polite_status, polite_body, _ = post_as_client(
            f"{base}/expand", {"query": query}, "smoke-polite"
        )

        oks = [g for g in greedy if g[0] == 200]
        sheds = [g for g in greedy if g[0] == 429]
        if not oks:
            failures.append("greedy client never served within its burst")
        if not sheds:
            failures.append("greedy burst was never shed (no 429s)")
        if len(oks) + len(sheds) != len(greedy):
            failures.append(
                "greedy burst saw statuses other than 200/429: "
                f"{sorted({g[0] for g in greedy})}"
            )
        for status, body, headers in sheds:
            code = body.get("error", {}).get("code")
            if code not in ("client_rate_limited", "over_capacity"):
                failures.append(f"429 envelope has wrong code: {body}")
                break
            retry_after = headers.get("Retry-After")
            if retry_after is None or int(retry_after) < 1:
                failures.append(f"429 lacks a usable Retry-After: {headers}")
                break
        if polite_status != 200 or not polite_body.get("results"):
            failures.append(
                f"polite client was shed during the flood: {polite_status}"
            )
        print(f"shed: greedy client {len(oks)} served / {len(sheds)} refused "
              "with structured 429s; polite client untouched")

        health = get_json(f"{base}/healthz")
        admission = health.get("admission")
        if not admission:
            failures.append(f"healthz carries no admission block: {health}")
        else:
            if admission.get("shed_total", 0) < len(sheds):
                failures.append(f"admission shed_total too low: {admission}")
            if "client_rate_limited" not in admission.get("shed_by_reason", {}):
                failures.append(
                    f"shed_by_reason missing client_rate_limited: {admission}"
                )

        text, _ = get_text(f"{base}/metrics")
        shed_metric = sum(
            value
            for (name, _labels), value
            in parse_prometheus_text(text)["samples"].items()
            if name == "repro_shed_total"
        )
        if shed_metric < len(sheds):
            failures.append(
                f"repro_shed_total ({shed_metric}) did not keep up with "
                f"the {len(sheds)} refusals"
            )

        # Recover: the bucket refills at 3/s, so after ~1.5s the greedy
        # client must serve again and the queue must be drained.
        time.sleep(1.5)
        status, body, _ = post_as_client(
            f"{base}/expand", {"query": query}, "smoke-greedy"
        )
        if status != 200 or not body.get("results"):
            failures.append(f"greedy client did not recover: {status}")
        health = get_json(f"{base}/healthz")
        if health.get("admission", {}).get("queue_depth") != 0:
            failures.append(f"queue not drained after recovery: {health}")
        print("shed: greedy client recovered after backoff; queue drained")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def check_worker_serving(
    snap_dir: Path, query: str, ref_results: list, failures: list[str]
) -> None:
    """Serve with out-of-process shard workers; kill one mid-run."""
    from repro.obs import parse_prometheus_text

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--snapshot", str(snap_dir), "--http", "0", "--workers", "2"],
        cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(proc)
        base = f"http://127.0.0.1:{port}"

        health = get_json(f"{base}/healthz")
        workers = health.get("workers", [])
        if len(workers) != 2:
            failures.append(f"healthz workers list missing or wrong: {health}")
            return
        if any(w.get("state") != "up" for w in workers):
            failures.append(f"workers not all up at startup: {workers}")

        served = get_json(f"{base}/expand", {"query": query})
        if [(r["doc_id"], r["score"]) for r in served["results"]] != ref_results:
            failures.append(
                "worker-mode /expand differs from the in-process router"
            )
        else:
            print("workers: /expand over worker processes matches "
                  "the in-process router")

        victim = workers[0].get("pid")
        if not victim:
            failures.append(f"worker entry carries no pid: {workers[0]}")
            return
        os.kill(victim, signal.SIGKILL)
        print(f"workers: killed worker pid {victim}; waiting for restart")
        deadline = time.time() + 120
        recovered = False
        while time.time() < deadline:
            health = get_json(f"{base}/healthz")
            workers = health.get("workers", [])
            if sum(w.get("restarts", 0) for w in workers) >= 1 and \
                    all(w.get("state") == "up" for w in workers):
                recovered = True
                break
            time.sleep(0.2)
        if not recovered:
            failures.append(f"killed worker did not recover: {health}")
            return
        print("workers: supervisor restarted the killed worker "
              f"(healthz: {health.get('worker_restarts')} restart(s))")

        served = get_json(f"{base}/expand", {"query": query})
        if [(r["doc_id"], r["score"]) for r in served["results"]] != ref_results:
            failures.append(
                "post-restart /expand differs from the in-process router"
            )

        text, _ = get_text(f"{base}/metrics")
        restarts_metric = sum(
            value
            for (name, _labels), value
            in parse_prometheus_text(text)["samples"].items()
            if name == "repro_shard_worker_restarts_total"
        )
        if restarts_metric < 1:
            failures.append(
                "repro_shard_worker_restarts_total did not advance "
                f"after the kill (saw {restarts_metric})"
            )
        else:
            print("workers: restart counter visible in /metrics")

        check_live_updates(base, query, ref_results, failures,
                           id_base=9_610_000, tag="live-workers")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        snap_dir = Path(tmp) / "snap"
        benchmark = build_snapshot(snap_dir)
        query = benchmark.topics[0].keywords
        print(f"snapshot built at {snap_dir}; query: {query!r}")

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--snapshot", str(snap_dir), "--http", "0"],
            cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = wait_for_port(proc)
            base = f"http://127.0.0.1:{port}"

            health = get_json(f"{base}/healthz")
            print(f"healthz: {health}")
            if health.get("status") != "ok":
                failures.append(f"healthz status not ok: {health}")
            if health.get("shards") != 2:
                failures.append(f"healthz shards != 2: {health}")
            if "v3 sharded" not in health.get("snapshot", ""):
                failures.append(f"healthz does not echo the v3 layout: {health}")

            served = get_json(f"{base}/expand", {"query": query})

            # The synchronous reference over the very same on-disk snapshot.
            from repro.service import ShardRouter, ShardedSnapshot
            router = ShardRouter(ShardedSnapshot.load(snap_dir))
            reference = router.expand_query(query)

            http_results = [(r["doc_id"], r["score"]) for r in served["results"]]
            ref_results = [(r.doc_id, r.score) for r in reference.results]
            if http_results != ref_results:
                failures.append(
                    "HTTP /expand results differ from the in-process router:\n"
                    f"  http: {http_results}\n  sync: {ref_results}"
                )
            if served["expansion"]["article_ids"] != \
                    sorted(reference.expansion.article_ids):
                failures.append("HTTP expansion article set differs")
            if served["expansion"]["titles"] != list(reference.expansion.titles):
                failures.append("HTTP expansion titles differ")
            if served["linked"] != reference.linked:
                failures.append("HTTP linked flag differs")
            print(f"expand: {len(served['results'])} results, "
                  f"linked={served['linked']} — matches in-process router")

            after = get_json(f"{base}/healthz")
            if after.get("http_requests_total", 0) < 1:
                failures.append(f"http_requests_total did not advance: {after}")
            if after.get("router_requests_total", 0) < 1:
                failures.append(
                    f"router_requests_total did not advance: {after}"
                )
            if "requests_total" in after:
                failures.append(
                    f"healthz still carries the ambiguous requests_total key: "
                    f"{after}"
                )
            if not after.get("per_shard"):
                failures.append(f"healthz per_shard breakdown missing: {after}")
            check_metrics(base, failures)
            check_top_once(base, failures)
            check_live_updates(base, query, ref_results, failures,
                               id_base=9_600_000, tag="live")
            router.close()
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

        recent_path = snap_dir / "recent_queries.json"
        if not recent_path.exists():
            failures.append(
                "shutdown did not persist recent_queries.json next to "
                "the snapshot manifest"
            )
        else:
            persisted = json.loads(recent_path.read_text(encoding="utf-8"))
            if query not in persisted.get("queries", []):
                failures.append(
                    f"persisted recency set misses the served query: "
                    f"{persisted}"
                )
            else:
                print(f"warm start: shutdown persisted "
                      f"{len(persisted['queries'])} recent quer(y/ies)")

        check_shedding(snap_dir, query, failures)
        check_worker_serving(snap_dir, query, ref_results, failures)

    if failures:
        print("HTTP smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("HTTP smoke ok: /healthz, /expand, /metrics, repro top, "
          "live updates (apply/compact hot swap, in both modes), "
          "warm-start persistence, overload shedding (429 -> recover) and "
          "worker-mode serving (with a mid-run kill) agree with the "
          "synchronous path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
